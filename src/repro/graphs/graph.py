"""Immutable undirected graph over a canonical CSR adjacency matrix.

Design
------
A :class:`Graph` is a thin, validated wrapper around a *binary,
symmetric* ``scipy.sparse.csr_array``.  The paper works exclusively with
``B = {0, 1}`` adjacency matrices (Def. in §II), so values are coerced
to int64 ones and duplicates collapse.  Self loops are permitted -- they
are load-bearing in this paper (Assumption 1(ii) adds ``I_A``) -- and
tracked explicitly.

The class is immutable by convention: every "mutating" operation
(adding self loops, taking subgraphs, relabelling) returns a new
``Graph``, which keeps the Kronecker layer free of aliasing bugs and
lets the CSR arrays be shared safely across threads/processes.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

import numpy as np
import scipy.sparse as sp

from repro.gb.matrix import GBMatrix

__all__ = ["Graph"]


def _canonical_adjacency(matrix) -> sp.csr_array:
    """Coerce input to a canonical binary symmetric CSR adjacency."""
    if isinstance(matrix, GBMatrix):
        matrix = matrix.csr
    if sp.issparse(matrix):
        csr = sp.csr_array(matrix)
    else:
        arr = np.asarray(matrix)
        if arr.ndim != 2:
            raise ValueError(f"adjacency must be 2-D, got shape {arr.shape}")
        csr = sp.csr_array(arr)
    if csr.shape[0] != csr.shape[1]:
        raise ValueError(f"adjacency must be square, got shape {csr.shape}")
    csr.sum_duplicates()
    csr.eliminate_zeros()
    # Binarize: the substrate is 0/1 adjacency only.
    csr = csr.astype(bool).astype(np.int64)
    diff = (csr - csr.T).tocoo()
    if diff.nnz and np.any(diff.data != 0):
        raise ValueError("adjacency must be symmetric (undirected graph)")
    csr.sort_indices()
    return csr


class Graph:
    """An undirected graph with 0-based vertices ``0..n-1``.

    Parameters
    ----------
    adjacency:
        A square symmetric matrix (scipy sparse, dense array, or
        :class:`~repro.gb.matrix.GBMatrix`).  Nonzeros become edges.
    """

    __slots__ = ("adj",)

    def __init__(self, adjacency):
        self.adj = _canonical_adjacency(adjacency)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(cls, n: int, edges: Iterable[Tuple[int, int]]) -> "Graph":
        """Build from an iterable of ``(u, v)`` pairs (symmetrized)."""
        edges = np.asarray(list(edges), dtype=np.int64)
        if edges.size == 0:
            return cls(sp.csr_array((n, n), dtype=np.int64))
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError(f"edges must be (m, 2) pairs, got shape {edges.shape}")
        if edges.min() < 0 or edges.max() >= n:
            raise ValueError("edge endpoint out of range")
        u, v = edges[:, 0], edges[:, 1]
        rows = np.concatenate((u, v))
        cols = np.concatenate((v, u))
        data = np.ones(rows.size, dtype=np.int64)
        return cls(sp.coo_array((data, (rows, cols)), shape=(n, n)))

    @classmethod
    def from_edge_arrays(cls, n: int, u: np.ndarray, v: np.ndarray) -> "Graph":
        """Build from parallel endpoint arrays (symmetrized)."""
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        if u.shape != v.shape:
            raise ValueError("endpoint arrays must have equal length")
        if u.size == 0:
            return cls(sp.csr_array((n, n), dtype=np.int64))
        rows = np.concatenate((u, v))
        cols = np.concatenate((v, u))
        data = np.ones(rows.size, dtype=np.int64)
        return cls(sp.coo_array((data, (rows, cols)), shape=(n, n)))

    @classmethod
    def empty(cls, n: int) -> "Graph":
        """A graph with ``n`` vertices and no edges."""
        return cls(sp.csr_array((n, n), dtype=np.int64))

    @classmethod
    def from_canonical_csr(cls, adjacency: sp.csr_array) -> "Graph":
        """Wrap an *already-canonical* CSR adjacency without copying.

        Trusted constructor for adjacencies that went through
        :func:`_canonical_adjacency` before (binary int64, symmetric,
        sorted indices, no explicit zeros) -- e.g. CSR triplets restored
        from a checksummed oracle artifact, where re-canonicalizing
        would force a copy and break ``mmap`` page-cache sharing across
        serving workers.  Only the shape is checked; callers vouch for
        the invariants (the artifact layer's content checksum does).
        """
        if not isinstance(adjacency, sp.csr_array):
            raise TypeError(f"from_canonical_csr needs a csr_array, got {type(adjacency)!r}")
        if adjacency.shape[0] != adjacency.shape[1]:
            raise ValueError(f"adjacency must be square, got shape {adjacency.shape}")
        graph = object.__new__(cls)
        graph.adj = adjacency
        return graph

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices (the paper's ``n_A``)."""
        return int(self.adj.shape[0])

    @property
    def nnz(self) -> int:
        """Stored nonzeros of the adjacency (directed edge slots)."""
        return int(self.adj.nnz)

    @property
    def num_self_loops(self) -> int:
        return int(np.count_nonzero(self.adj.diagonal()))

    @property
    def m(self) -> int:
        """Number of undirected edges; each self loop counts once."""
        loops = self.num_self_loops
        return (self.nnz - loops) // 2 + loops

    @property
    def has_self_loops(self) -> bool:
        return self.num_self_loops > 0

    @property
    def has_all_self_loops(self) -> bool:
        """True iff every vertex carries a self loop (``D_A = I_A``)."""
        return self.num_self_loops == self.n

    def degrees(self) -> np.ndarray:
        """Degree vector ``d = A·1`` (self loops contribute 1)."""
        return np.asarray(self.adj.sum(axis=1)).ravel().astype(np.int64)

    def neighbors(self, i: int) -> np.ndarray:
        """Sorted neighbour array of vertex ``i``."""
        if not 0 <= i < self.n:
            raise IndexError(f"vertex {i} out of range [0, {self.n})")
        return self.adj.indices[self.adj.indptr[i] : self.adj.indptr[i + 1]].astype(np.int64)

    def has_edge(self, u: int, v: int) -> bool:
        row = self.neighbors(u)
        pos = np.searchsorted(row, v)
        return bool(pos < row.size and row[pos] == v)

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(u, v)`` arrays with ``u <= v`` (each edge once)."""
        coo = self.adj.tocoo()
        keep = coo.row <= coo.col
        return coo.row[keep].astype(np.int64), coo.col[keep].astype(np.int64)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate undirected edges as ``(u, v)`` with ``u <= v``."""
        u, v = self.edge_arrays()
        return zip(u.tolist(), v.tolist())

    # ------------------------------------------------------------------
    # Views / conversions
    # ------------------------------------------------------------------

    def gb(self) -> GBMatrix:
        """Adjacency as a :class:`~repro.gb.matrix.GBMatrix`."""
        return GBMatrix(self.adj)

    def to_dense(self) -> np.ndarray:
        return self.adj.toarray()

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def with_all_self_loops(self) -> "Graph":
        """Return ``A + I_A`` (idempotent on existing loops)."""
        eye = sp.identity(self.n, dtype=np.int64, format="csr")
        return Graph(self.adj + eye)

    def without_self_loops(self) -> "Graph":
        """Return ``A - A ∘ I`` (loop removal, §II-B)."""
        csr = self.adj.copy().tolil()
        csr.setdiag(0)
        return Graph(sp.csr_array(csr))

    def subgraph(self, vertices) -> "Graph":
        """Induced subgraph on the given (relabelled 0..k-1) vertices."""
        vertices = np.asarray(vertices, dtype=np.int64)
        return Graph(self.adj[vertices, :][:, vertices])

    def relabel(self, permutation) -> "Graph":
        """Return the graph with vertex ``i`` renamed ``permutation[i]``.

        ``permutation`` must be a permutation of ``0..n-1``; the result
        ``G'`` satisfies ``G'.has_edge(perm[u], perm[v]) == G.has_edge(u, v)``.
        """
        perm = np.asarray(permutation, dtype=np.int64)
        if perm.shape != (self.n,) or not np.array_equal(np.sort(perm), np.arange(self.n)):
            raise ValueError("permutation must be a permutation of 0..n-1")
        inverse = np.empty_like(perm)
        inverse[perm] = np.arange(self.n)
        return Graph(self.adj[inverse, :][:, inverse])

    def __eq__(self, other) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if self.n != other.n:
            return False
        diff = self.adj - other.adj
        return diff.nnz == 0 or not np.any(diff.data)

    def __hash__(self):  # pragma: no cover - graphs as dict keys unused
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n={self.n}, m={self.m}, self_loops={self.num_self_loops})"
