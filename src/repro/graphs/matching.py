"""Maximum bipartite matching (Hopcroft-Karp).

A staple bipartite analytic rounding out the substrate: §I's framing is
that the community needs large bipartite instances "to validate their
algorithm development", and matching is among the most common such
algorithms.  The Kronecker layer gives matching validation a useful
*bound* oracle: by König's theorem the matching number equals the
vertex-cover number, and for products the trivial bounds
``ν(C) <= min(|U_C|, |W_C|)`` and ``ν(C) >= (largest matched block)``
are immediate from the block structure -- the tests exercise both.

Implementation: classical Hopcroft-Karp -- layered BFS to find the
shortest augmenting distance, then DFS along layers -- O(E sqrt(V)).
"""

from __future__ import annotations

from collections import deque
from typing import Dict

import numpy as np

from repro.graphs.bipartite import BipartiteGraph

__all__ = ["maximum_matching", "matching_number"]

_INF = float("inf")


def maximum_matching(bg: BipartiteGraph) -> Dict[int, int]:
    """A maximum matching as a dict ``{u: w}`` over matched pairs.

    Keys are ``U``-part vertices, values their ``W``-part partners
    (global vertex ids).  The returned matching is maximum (not merely
    maximal); ties between maximum matchings are broken by adjacency
    order, deterministically.
    """
    X = bg.biadjacency()
    U, W = bg.U, bg.W
    nu = U.size
    indptr, indices = X.indptr, X.indices
    match_u = np.full(nu, -1, dtype=np.int64)      # u -> w (local)
    match_w = np.full(W.size, -1, dtype=np.int64)  # w -> u (local)
    dist = np.empty(nu, dtype=np.float64)

    def bfs() -> bool:
        queue = deque()
        for u in range(nu):
            if match_u[u] == -1:
                dist[u] = 0.0
                queue.append(u)
            else:
                dist[u] = _INF
        found = False
        while queue:
            u = queue.popleft()
            for w in indices[indptr[u] : indptr[u + 1]]:
                nxt = match_w[w]
                if nxt == -1:
                    found = True
                elif dist[nxt] == _INF:
                    dist[nxt] = dist[u] + 1
                    queue.append(int(nxt))
        return found

    def dfs(u: int) -> bool:
        for w in indices[indptr[u] : indptr[u + 1]]:
            nxt = match_w[w]
            if nxt == -1 or (dist[nxt] == dist[u] + 1 and dfs(int(nxt))):
                match_u[u] = w
                match_w[w] = u
                return True
        dist[u] = _INF
        return False

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, nu + W.size + 100))
    try:
        while bfs():
            for u in range(nu):
                if match_u[u] == -1:
                    dfs(u)
    finally:
        sys.setrecursionlimit(old_limit)
    return {int(U[u]): int(W[match_u[u]]) for u in range(nu) if match_u[u] != -1}


def matching_number(bg: BipartiteGraph) -> int:
    """Size of a maximum matching (``ν``)."""
    return len(maximum_matching(bg))
