"""``repro.core`` -- alias namespace for the paper's primary contribution.

The project layout names the core subpackage :mod:`repro.kronecker`
(the contribution *is* the bipartite Kronecker ground-truth machinery);
this module re-exports it under the generic ``repro.core`` name so
downstream code written against either import path works:

    from repro.core import make_bipartite_product      # equivalent
    from repro.kronecker import make_bipartite_product # equivalent
"""

from repro.kronecker import *  # noqa: F401,F403 - deliberate alias surface
from repro.kronecker import __all__  # noqa: F401
