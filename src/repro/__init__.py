"""repro: non-stochastic Kronecker generation of bipartite graphs with
ground-truth 4-cycle counts and dense structure.

A faithful, laptop-scale reproduction of

    Steil, McMillan, Sanders, Pearce, Priest.
    "Kronecker Graph Generation with Ground Truth for 4-Cycles and
    Dense Structure in Bipartite Graphs."  IEEE IPDPSW (GrAPL) 2020.

Quickstart::

    from repro import (
        Assumption, make_bipartite_product, GroundTruthOracle,
        path_graph, cycle_graph,
    )

    bk = make_bipartite_product(cycle_graph(3), path_graph(4),
                                Assumption.NON_BIPARTITE_FACTOR)
    oracle = GroundTruthOracle(bk)
    print(oracle.global_squares())        # exact, without forming C

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-vs-measured experiment index.
"""

from repro.generators import (
    bipartite_bter,
    bipartite_chung_lu,
    bipartite_rmat,
    complete_bipartite,
    complete_graph,
    cycle_graph,
    konect_unicode_like,
    path_graph,
    powerlaw_weights,
    preferential_attachment,
    rmat,
    scale_free_bipartite_factor,
    scale_free_nonbipartite_factor,
    star_graph,
)
from repro.graphs import BipartiteGraph, Graph, bipartition, is_bipartite, is_connected
from repro.kronecker import (
    Assumption,
    BipartiteCommunity,
    BipartiteKronecker,
    GroundTruthOracle,
    KroneckerProduct,
    edge_squares_product,
    global_squares_product,
    kron_graph,
    kron_power,
    make_bipartite_product,
    predict_product_connectivity,
    product_community,
    stream_edges,
    thm7_product_counts,
    vertex_squares_product,
)

from repro.validation import ValidationReport, standard_battery, validate_counter

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # graphs
    "Graph",
    "BipartiteGraph",
    "bipartition",
    "is_bipartite",
    "is_connected",
    # generators
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "complete_bipartite",
    "preferential_attachment",
    "scale_free_bipartite_factor",
    "scale_free_nonbipartite_factor",
    "bipartite_chung_lu",
    "powerlaw_weights",
    "rmat",
    "bipartite_rmat",
    "bipartite_bter",
    "konect_unicode_like",
    # kronecker core
    "Assumption",
    "BipartiteKronecker",
    "make_bipartite_product",
    "KroneckerProduct",
    "kron_graph",
    "kron_power",
    "vertex_squares_product",
    "edge_squares_product",
    "global_squares_product",
    "predict_product_connectivity",
    "GroundTruthOracle",
    "BipartiteCommunity",
    "product_community",
    "thm7_product_counts",
    "stream_edges",
    "validate_counter",
    "standard_battery",
    "ValidationReport",
]
