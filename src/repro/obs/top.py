"""``repro top`` — live console dashboard over telemetry.

Two sources, one renderer:

* **Event-log mode** (``--events PATH``): tail the JSONL file written
  by ``--events-out`` (incremental reads from the last byte offset, so
  following a multi-gigabyte log costs only the new lines) and fold the
  events into a :class:`TopState` — per-shard progress, entry/byte
  tallies, retry/failure counters, streamed blocks, serve-side
  shed/eviction counts, and an edges/sec + ETA estimate from the event
  timestamps.
* **URL mode** (``--url http://host:port``): poll a running
  ``repro serve``'s JSON ``/metrics`` endpoint and show the service
  tallies plus latency quantiles from the labeled histograms.

``--once`` renders a single frame without ANSI control sequences (what
the tests and scripts use); live mode repaints the screen every
``--interval`` seconds until ``--duration`` elapses or Ctrl-C.

Torn tails are a non-issue by construction — the :class:`EventLog`
writer emits whole lines per ``os.write`` — but the tailer still keeps
any trailing partial line buffered until its newline arrives, so it is
safe against logs copied mid-flush.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["TopState", "EventTailer", "aggregate_events", "render_dashboard", "run_top"]

_CLEAR = "\x1b[2J\x1b[H"


@dataclass
class TopState:
    """Rolling aggregate of one run's telemetry events."""

    run_id: Optional[str] = None
    n_shards: int = 0
    total_entries: int = 0
    planned_at: Optional[float] = None  # mono timestamp of shards.planned
    completed: dict[int, dict[str, Any]] = field(default_factory=dict)
    skipped: set[int] = field(default_factory=set)
    entries_done: int = 0
    bytes_done: int = 0
    retries: int = 0
    failures: int = 0
    exhausted: int = 0
    stream_blocks: int = 0
    stream_edges: int = 0
    shed: int = 0
    cache_evictions: int = 0
    finished: bool = False
    last_mono: Optional[float] = None
    n_events: int = 0
    recent: list[dict[str, Any]] = field(default_factory=list)

    # ------------------------------------------------------------------

    def ingest(self, event: dict[str, Any]) -> None:
        kind = event.get("kind")
        if not kind:
            return
        self.n_events += 1
        self.run_id = event.get("run_id", self.run_id)
        mono = event.get("mono")
        if isinstance(mono, (int, float)):
            self.last_mono = mono
        self.recent.append(event)
        del self.recent[:-8]
        if kind == "shards.planned":
            # A fresh plan supersedes the previous run: the same log can
            # hold a crashed run followed by its --resume, and the
            # dashboard should show the latest run's progress.
            self.n_shards = int(event.get("n_shards", 0))
            self.total_entries = int(event.get("total_entries", 0))
            self.completed.clear()
            self.skipped.clear()
            self.entries_done = 0
            self.bytes_done = 0
            self.retries = 0
            self.failures = 0
            self.exhausted = 0
            self.finished = False
            if isinstance(mono, (int, float)):
                self.planned_at = mono
        elif kind == "shard.skipped":
            index = event.get("index")
            if index is not None:
                self.skipped.add(int(index))
                self.entries_done += int(event.get("entries", 0))
        elif kind == "shard.completed":
            index = event.get("index")
            if index is not None and int(index) not in self.completed:
                self.completed[int(index)] = event
                self.entries_done += int(event.get("entries", 0))
                self.bytes_done += int(event.get("bytes", 0))
        elif kind == "shards.finished":
            self.finished = True
        elif kind == "task.retried":
            self.retries += 1
        elif kind == "task.failed":
            self.failures += 1
        elif kind == "task.budget_exhausted":
            self.exhausted += 1
        elif kind == "stream.block":
            self.stream_blocks += 1
            self.stream_edges += int(event.get("edges", 0))
        elif kind == "serve.queue_shed":
            self.shed += 1
        elif kind == "serve.cache_evicted":
            self.cache_evictions += int(event.get("entries", 1))

    # ------------------------------------------------------------------

    @property
    def shards_done(self) -> int:
        return len(self.completed) + len(self.skipped)

    def rate(self) -> Optional[float]:
        """Entries/sec over the observed window (event monotonic clocks)."""
        if self.planned_at is None or self.last_mono is None:
            return None
        elapsed = self.last_mono - self.planned_at
        if elapsed <= 0 or not self.entries_done:
            return None
        return self.entries_done / elapsed

    def eta_s(self) -> Optional[float]:
        rate = self.rate()
        if rate is None or not self.total_entries:
            return None
        remaining = max(0, self.total_entries - self.entries_done)
        return remaining / rate


def aggregate_events(events: list[dict[str, Any]]) -> TopState:
    """Fold a full event list into a :class:`TopState` (tests, --once)."""
    state = TopState()
    for event in events:
        state.ingest(event)
    return state


class EventTailer:
    """Incremental JSONL reader: only new bytes are read per poll."""

    def __init__(self, path: str):
        self.path = path
        self._offset = 0
        self._partial = ""

    def poll(self) -> list[dict[str, Any]]:
        """Complete events appended since the previous call."""
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                fh.seek(self._offset)
                chunk = fh.read()
                self._offset = fh.tell()
        except FileNotFoundError:
            return []
        if not chunk:
            return []
        text = self._partial + chunk
        lines = text.split("\n")
        self._partial = lines.pop()  # "" when the chunk ended on a newline
        events = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict):
                events.append(event)
        return events


def _bar(fraction: float, width: int = 32) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def _fmt_duration(seconds: float) -> str:
    seconds = int(round(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


def render_dashboard(state: TopState, source: str) -> str:
    """One text frame of the dashboard (no ANSI; caller adds clearing)."""
    lines = [f"repro top — {source}"]
    if state.run_id:
        lines[0] += f"  (run {state.run_id})"
    if state.n_shards:
        frac = state.shards_done / state.n_shards
        entry_note = ""
        if state.total_entries:
            entry_note = f"  {state.entries_done:,}/{state.total_entries:,} entries"
        lines.append(
            f"shards   {_bar(frac)} {state.shards_done}/{state.n_shards}"
            f"{entry_note}"
        )
        done = " done" if state.finished else ""
        rate = state.rate()
        if rate is not None:
            eta = state.eta_s()
            eta_note = (
                ""
                if eta is None or state.finished
                else f"  eta {_fmt_duration(eta)}"
            )
            lines.append(f"rate     {rate:,.0f} entries/s{eta_note}{done}")
        elif done:
            lines.append(f"rate     -{done}")
    if state.stream_blocks:
        lines.append(
            f"stream   {state.stream_blocks:,} blocks, {state.stream_edges:,} edges"
        )
    lines.append(
        f"faults   {state.retries} retried, {state.failures} failed, "
        f"{state.exhausted} exhausted"
    )
    if state.shed or state.cache_evictions:
        lines.append(
            f"serve    {state.shed} shed, {state.cache_evictions} cache evictions"
        )
    lines.append(f"events   {state.n_events:,} ingested")
    if state.recent:
        lines.append("recent:")
        for event in state.recent[-5:]:
            extras = {
                k: v
                for k, v in event.items()
                if k not in ("schema", "run_id", "pid", "kind", "t", "mono", "seq")
            }
            detail = " ".join(f"{k}={v}" for k, v in extras.items())
            lines.append(f"  {event.get('kind', '?'):<24} {detail}".rstrip())
    return "\n".join(lines)


def _poll_url(url: str) -> str:
    """One frame from a served /metrics JSON snapshot."""
    from urllib.request import urlopen

    with urlopen(url.rstrip("/") + "/metrics", timeout=5.0) as resp:
        body = json.loads(resp.read().decode("utf-8"))
    service = body.get("service", {})
    metrics = body.get("metrics", {})
    lines = [f"repro top — {url}"]
    lines.append(
        "serve    "
        + ", ".join(f"{k}={service[k]:,}" for k in sorted(service))
    )
    histograms = metrics.get("histograms", {})
    latency = {
        key: s for key, s in histograms.items() if key.startswith("serve.http.latency")
    }
    for key in sorted(latency):
        s = latency[key]
        if not s.get("count"):
            continue
        p50 = s.get("p50")
        p99 = s.get("p99")
        quant = (
            f" p50={p50 * 1e3:.2f}ms p99={p99 * 1e3:.2f}ms"
            if p50 is not None and p99 is not None
            else ""
        )
        lines.append(f"  {key:<56} n={s['count']}{quant}")
    counters = metrics.get("counters", {})
    responses = {
        key: v for key, v in counters.items() if key.startswith("serve.http.responses")
    }
    for key in sorted(responses):
        lines.append(f"  {key:<56} {responses[key]:,}")
    return "\n".join(lines)


def run_top(
    *,
    events: Optional[str] = None,
    url: Optional[str] = None,
    interval: float = 1.0,
    once: bool = False,
    duration: Optional[float] = None,
    file=None,
) -> int:
    """Drive the dashboard loop; returns a process exit code."""
    out = file or sys.stdout
    deadline = None if duration is None else time.monotonic() + duration
    state = TopState()
    tailer = EventTailer(events) if events is not None else None

    def frame() -> str:
        if tailer is not None:
            for event in tailer.poll():
                state.ingest(event)
            return render_dashboard(state, source=str(events))
        assert url is not None
        return _poll_url(url)

    try:
        if once:
            print(frame(), file=out)
            return 0
        while True:
            text = frame()
            print(f"{_CLEAR}{text}", file=out, flush=True)
            if deadline is not None and time.monotonic() >= deadline:
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
