"""Process-wide instrumentation state: off by default, one switch.

Hot paths ask ``get_tracer()`` / ``get_metrics()`` at call time and get
the null implementations unless something turned instrumentation on —
so tier-1 correctness paths pay a dict lookup and no-op calls, nothing
more.  The CLI's ``--profile`` / ``--metrics-out`` flags and the tests
use :func:`instrument`, which installs a *fresh* tracer/registry pair
and restores the previous pair on exit (re-entrant, so suites can nest
without leaking state into each other).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from repro.obs.events import NULL_EVENTS, EventLog, NullEventLog
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry, NullRegistry
from repro.obs.span import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "get_tracer",
    "get_metrics",
    "get_events",
    "is_enabled",
    "enable",
    "disable",
    "instrument",
    "events_to",
]

_lock = threading.Lock()
_tracer: Tracer | NullTracer = NULL_TRACER
_metrics: MetricsRegistry | NullRegistry = NULL_REGISTRY
_events: EventLog | NullEventLog = NULL_EVENTS


def get_tracer() -> Tracer | NullTracer:
    """The process-wide tracer (null unless instrumentation is on)."""
    return _tracer


def get_metrics() -> MetricsRegistry | NullRegistry:
    """The process-wide metrics registry (null unless instrumentation is on)."""
    return _metrics


def get_events() -> EventLog | NullEventLog:
    """The process-wide event log (null unless :func:`events_to` is active)."""
    return _events


def is_enabled() -> bool:
    return _metrics.enabled or _tracer.enabled


def enable() -> tuple[Tracer, MetricsRegistry]:
    """Install a fresh live tracer + registry; returns the pair."""
    global _tracer, _metrics
    with _lock:
        _tracer = Tracer()
        _metrics = MetricsRegistry()
        return _tracer, _metrics


def disable() -> None:
    """Back to the zero-overhead null implementations."""
    global _tracer, _metrics
    with _lock:
        _tracer = NULL_TRACER
        _metrics = NULL_REGISTRY


@contextmanager
def instrument() -> Iterator[tuple[Tracer, MetricsRegistry]]:
    """Scoped instrumentation: fresh pair inside, previous pair after.

    >>> from repro.obs import instrument
    >>> with instrument() as (tracer, metrics):
    ...     with tracer.span("work"):
    ...         metrics.counter("things_total").inc()
    """
    global _tracer, _metrics
    with _lock:
        prev = (_tracer, _metrics)
        _tracer = Tracer()
        _metrics = MetricsRegistry()
        pair = (_tracer, _metrics)
    try:
        yield pair
    finally:
        with _lock:
            _tracer, _metrics = prev


@contextmanager
def events_to(path: str | None, **kwargs: object) -> Iterator[EventLog | NullEventLog]:
    """Scoped structured-event logging to a JSONL file.

    Installs a live :class:`EventLog` appending to ``path`` so that
    ``get_events()`` call sites (shard generation, retry loop, streaming,
    serving) emit for the duration; restores the previous log and
    flushes/closes the new one on exit.  ``path=None`` is a no-op
    passthrough of the current log, which keeps call sites branch-free::

        with events_to(args.events_out):
            ...

    Extra ``kwargs`` go to the :class:`EventLog` constructor
    (``capacity``, ``flush_interval``, ``run_id``).
    """
    global _events
    if path is None:
        yield _events
        return
    log = EventLog(path, **kwargs)  # type: ignore[arg-type]
    with _lock:
        prev_events = _events
        _events = log
    try:
        yield log
    finally:
        with _lock:
            _events = prev_events
        log.close()
