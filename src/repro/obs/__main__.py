"""``python -m repro.obs FILE...`` — validate obs artifacts from the shell.

Two modes, both used by CI:

* ``python -m repro.obs RECORD.json ...`` — validate run-record files
  against the schema (bench-smoke, serve-smoke teardown).
* ``python -m repro.obs --prom EXPOSITION.txt ...`` — lint Prometheus
  text exposition captured from ``/metrics?format=prometheus``
  (serve-smoke scrape check).

Prefer this entry over ``python -m repro.obs.record`` (which works but
triggers runpy's found-in-sys.modules warning, since the package
__init__ imports the submodule).
"""

import sys
from typing import Optional

from repro.obs.prom import _lint_main
from repro.obs.record import _validator_main


def main(argv: Optional[list[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "--prom":
        return _lint_main(argv[1:])
    return _validator_main(argv)


if __name__ == "__main__":
    sys.exit(main())
