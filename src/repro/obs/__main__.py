"""``python -m repro.obs FILE...`` — validate run-record files.

Prefer this entry over ``python -m repro.obs.record`` (which works but
triggers runpy's found-in-sys.modules warning, since the package
__init__ imports the submodule).
"""

import sys

from repro.obs.record import _validator_main

sys.exit(_validator_main())
