"""Prometheus text exposition (scrape format 0.0.4) for metric snapshots.

:func:`render_prometheus` turns a :meth:`MetricsRegistry.snapshot()
<repro.obs.metrics.MetricsRegistry.snapshot>` dict into the plain-text
exposition format Prometheus scrapes — the payload behind
``GET /metrics?format=prometheus`` on ``repro serve``:

* counters and gauges render as one sample per labeled series
  (``repro_serve_http_responses_total{endpoint="v1_degree",status="200"} 7``);
* histograms render as standard Prometheus histograms (cumulative
  ``_bucket{le="..."}`` series over the shared
  :data:`~repro.obs.metrics.HISTOGRAM_BUCKET_BOUNDS`, plus ``_sum`` /
  ``_count``) **and** a companion ``<name>_quantile`` gauge family
  carrying the bucket-estimated p50/p90/p99, so a bare ``curl`` shows
  latency quantiles without a PromQL evaluator.

Metric names are sanitized to the Prometheus grammar (dots become
underscores, an optional ``repro_`` namespace prefix is applied);
label keys/values survive verbatim modulo escaping.

:func:`lint_exposition` is the executable half of the format contract:
it parses an exposition document and returns a list of problems (empty
means scrapeable).  CI's serve-smoke job runs it over the live
``/metrics?format=prometheus`` output via
``python -m repro.obs --prom FILE``.
"""

from __future__ import annotations

import re
from typing import Any, Optional

from repro.obs.metrics import HISTOGRAM_BUCKET_BOUNDS, parse_series_key

__all__ = ["render_prometheus", "lint_exposition"]

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_KEY_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>(?:[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\.)*\",?)*)\})?"
    r"\s+(?P<value>[^\s]+)(?:\s+(?P<timestamp>-?\d+))?$"
)

_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))


def _sanitize(name: str) -> str:
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not out or not re.match(r"[a-zA-Z_:]", out[0]):
        out = "_" + out
    return out


def _fmt_labels(labels: dict[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_sanitize(str(k))}="{_escape(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(
    snapshot: dict[str, Any],
    *,
    namespace: str = "repro",
    extra_gauges: Optional[dict[str, Any]] = None,
    const_labels: Optional[dict[str, str]] = None,
) -> str:
    """Render one metrics snapshot as Prometheus text exposition.

    ``extra_gauges`` maps metric names (dotted, pre-sanitization) to
    numeric values — the serving layer passes its service tallies
    (queue depth, cache entries, ...) through it so one scrape sees
    both worlds.

    ``const_labels`` are stamped onto **every** sample (series labels
    win on key collision).  The serving layer passes
    ``{"worker": <id>}`` so scrapes of different pre-fork workers stay
    distinct series instead of colliding when aggregated.
    """
    prefix = f"{namespace}_" if namespace else ""
    const = dict(const_labels or {})
    lines: list[str] = []
    families: set[str] = set()

    def family(name: str, kind: str) -> str:
        pname = _sanitize(prefix + name)
        if pname not in families:
            families.add(pname)
            lines.append(f"# TYPE {pname} {kind}")
        return pname

    by_family: dict[str, list[tuple[dict[str, str], Any]]] = {}
    for key, value in snapshot.get("counters", {}).items():
        name, labels = parse_series_key(key)
        by_family.setdefault(name, []).append(({**const, **labels}, value))
    for name in sorted(by_family):
        pname = family(name, "counter")
        for labels, value in by_family[name]:
            lines.append(f"{pname}{_fmt_labels(labels)} {_fmt_value(value)}")

    by_family = {}
    for key, value in snapshot.get("gauges", {}).items():
        if value is None:
            continue
        name, labels = parse_series_key(key)
        by_family.setdefault(name, []).append(({**const, **labels}, value))
    for name, value in sorted((extra_gauges or {}).items()):
        if value is not None and isinstance(value, (int, float)):
            by_family.setdefault(name, []).append((dict(const), value))
    for name in sorted(by_family):
        pname = family(name, "gauge")
        for labels, value in by_family[name]:
            lines.append(f"{pname}{_fmt_labels(labels)} {_fmt_value(value)}")

    hist_by_family: dict[str, list[tuple[dict[str, str], dict[str, Any]]]] = {}
    for key, summary in snapshot.get("histograms", {}).items():
        name, labels = parse_series_key(key)
        hist_by_family.setdefault(name, []).append(({**const, **labels}, summary))
    for name in sorted(hist_by_family):
        pname = family(name, "histogram")
        qname = family(name + "_quantile", "gauge")
        for labels, s in hist_by_family[name]:
            cumulative = 0
            buckets = {int(i): int(n) for i, n in (s.get("buckets") or {}).items()}
            for idx in sorted(buckets):
                cumulative += buckets[idx]
                le = (
                    repr(HISTOGRAM_BUCKET_BOUNDS[idx])
                    if idx < len(HISTOGRAM_BUCKET_BOUNDS)
                    else "+Inf"
                )
                blabels = {**labels, "le": le}
                lines.append(f"{pname}_bucket{_fmt_labels(blabels)} {cumulative}")
            inf_labels = {**labels, "le": "+Inf"}
            if not buckets or max(buckets) < len(HISTOGRAM_BUCKET_BOUNDS):
                lines.append(f"{pname}_bucket{_fmt_labels(inf_labels)} {int(s.get('count', 0))}")
            lines.append(f"{pname}_sum{_fmt_labels(labels)} {_fmt_value(s.get('sum', 0.0))}")
            lines.append(f"{pname}_count{_fmt_labels(labels)} {int(s.get('count', 0))}")
            for q, pkey in _QUANTILES:
                if pkey in s:
                    qlabels = {**labels, "quantile": q}
                    lines.append(f"{qname}{_fmt_labels(qlabels)} {_fmt_value(s[pkey])}")
    return "\n".join(lines) + "\n"


def lint_exposition(text: str) -> list[str]:
    """Validate scrape-format text; returns problems (empty == valid).

    Checks each line against the 0.0.4 grammar: comments/``# TYPE``
    declarations, and ``name{labels} value [timestamp]`` samples whose
    value parses as a float and whose family (name modulo the
    ``_bucket``/``_sum``/``_count`` histogram suffixes) was declared by
    a preceding ``# TYPE`` line.
    """
    problems: list[str] = []
    declared: dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    problems.append(f"line {lineno}: malformed TYPE declaration: {line!r}")
                    continue
                _, _, fname, kind = parts
                if not _NAME_OK.match(fname):
                    problems.append(f"line {lineno}: invalid family name {fname!r}")
                if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    problems.append(f"line {lineno}: unknown family type {kind!r}")
                if fname in declared:
                    problems.append(f"line {lineno}: duplicate TYPE for {fname!r}")
                declared[fname] = kind
            # HELP and free comments are always fine.
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            problems.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name = m.group("name")
        value = m.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                problems.append(f"line {lineno}: non-numeric sample value {value!r}")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in declared:
                base = name[: -len(suffix)]
                break
        if base not in declared:
            problems.append(f"line {lineno}: sample {name!r} has no TYPE declaration")
        raw = m.group("labels")
        if raw:
            for pair in filter(None, _split_label_pairs(raw)):
                key = pair.split("=", 1)[0]
                if not _LABEL_KEY_OK.match(key):
                    problems.append(f"line {lineno}: invalid label key {key!r}")
    return problems


def _split_label_pairs(raw: str) -> list[str]:
    """Split ``k="v",k2="v2"`` respecting escaped quotes inside values."""
    pairs: list[str] = []
    depth_quote = False
    current = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch == "\\" and depth_quote and i + 1 < len(raw):
            current.append(raw[i : i + 2])
            i += 2
            continue
        if ch == '"':
            depth_quote = not depth_quote
        if ch == "," and not depth_quote:
            pairs.append("".join(current))
            current = []
        else:
            current.append(ch)
        i += 1
    if current:
        pairs.append("".join(current))
    return pairs


def _lint_main(argv: list[str]) -> int:  # pragma: no cover - exercised via CI
    rc = 0
    for path in argv:
        with open(path, "r", encoding="utf-8") as fh:
            problems = lint_exposition(fh.read())
        if problems:
            rc = 1
            print(f"{path}: {len(problems)} problem(s)")
            for problem in problems:
                print(f"  {problem}")
        else:
            print(f"{path}: ok")
    return rc


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(_lint_main(sys.argv[1:]))
