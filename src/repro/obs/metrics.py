"""Process-wide metrics: counters, gauges, histograms, worker merging.

The registry is the numeric side of the observability layer (spans are
the temporal side).  Naming convention (docs/observability.md):
``<area>.<noun>_<unit>`` with plain totals left unprefixed when they
are the headline number of the run (``edges_streamed_total``).

``ProcessPoolExecutor`` paths cannot share a registry across process
boundaries, so workers build a *local* :class:`MetricsRegistry`, return
``registry.snapshot()`` next to their payload, and the parent folds the
snapshots in with :meth:`MetricsRegistry.merge_snapshot` (counters add,
gauges last-write-wins, histograms pool their moments).  See
:mod:`repro.parallel.count` for the pattern in use.

Disabled instrumentation uses :data:`NULL_REGISTRY`: ``counter()`` /
``gauge()`` / ``histogram()`` hand back a shared no-op metric, so hot
paths pay one method call and no allocation.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "merge_snapshots",
]


class Counter:
    """Monotonically increasing integer metric."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n


class Gauge:
    """Last-written value metric (e.g. a size or a configuration knob)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value: float | int | None = None
        self._lock = threading.Lock()

    def set(self, value: float | int) -> None:
        with self._lock:
            self.value = value


class Histogram:
    """Streaming summary of observations: count / sum / min / max / mean.

    Deliberately bucket-free — the run record wants the moments, and
    pooled moments merge exactly across workers (bucket boundaries
    would not survive ad-hoc merging).
    """

    __slots__ = ("name", "count", "sum", "min", "max", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        with self._lock:
            if not self.count:
                return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
            return {
                "count": self.count,
                "sum": self.sum,
                "min": self.min,
                "max": self.max,
                "mean": self.sum / self.count,
            }


class MetricsRegistry:
    """Get-or-create home for named metrics; snapshot/merge for export.

    Thread-safe: creation is guarded by a registry lock, updates by
    per-metric locks.  Asking twice for the same name returns the same
    object; asking for a name already registered as a different kind
    raises ``TypeError`` (metric names are a schema, not a namespace).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return True

    def _get_or_create(self, name: str, cls):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {type(metric).__name__}, "
                    f"not {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    # -- export / aggregation -------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict state: the run record's ``metrics`` section."""
        counters: dict[str, int] = {}
        gauges: dict[str, Any] = {}
        histograms: dict[str, dict[str, float]] = {}
        with self._lock:
            metrics = list(self._metrics.values())
        for m in metrics:
            if isinstance(m, Counter):
                counters[m.name] = m.value
            elif isinstance(m, Gauge):
                gauges[m.name] = m.value
            else:
                histograms[m.name] = m.summary()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge_snapshot(self, snap: dict[str, Any]) -> None:
        """Fold a worker snapshot into this registry.

        Counters add, gauges take the incoming value, histograms pool
        count/sum/min/max — exactly the reductions that make per-worker
        measurement order-independent.
        """
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():
            if value is not None:
                self.gauge(name).set(value)
        for name, s in snap.get("histograms", {}).items():
            h = self.histogram(name)
            if not s.get("count"):
                continue
            with h._lock:
                h.count += s["count"]
                h.sum += s["sum"]
                h.min = min(h.min, s["min"])
                h.max = max(h.max, s["max"])


class _NullMetric:
    """Shared no-op counter/gauge/histogram."""

    __slots__ = ()

    name = "null"
    value = 0
    count = 0
    sum = 0.0
    mean = 0.0

    def inc(self, n: int = 1) -> None:
        return None

    def set(self, value: float | int) -> None:
        return None

    def observe(self, value: float) -> None:
        return None

    def summary(self) -> dict[str, float]:
        return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}


class NullRegistry:
    """Disabled registry: every metric is the shared no-op metric."""

    __slots__ = ()

    @property
    def enabled(self) -> bool:
        return False

    def counter(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def snapshot(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge_snapshot(self, snap: dict[str, Any]) -> None:
        return None


_NULL_METRIC = _NullMetric()
NULL_REGISTRY = NullRegistry()


def merge_snapshots(snaps: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Reduce worker snapshots into one snapshot (fresh registry)."""
    reg = MetricsRegistry()
    for snap in snaps:
        reg.merge_snapshot(snap)
    return reg.snapshot()
