"""Process-wide metrics: labeled counters/gauges, bucketed histograms, merging.

The registry is the numeric side of the observability layer (spans are
the temporal side).  Naming convention (docs/observability.md):
``<area>.<noun>_<unit>`` with plain totals left unprefixed when they
are the headline number of the run (``edges_streamed_total``).

**Labels.**  Every metric accessor takes optional keyword labels —
``counter("serve.http.responses_total", status="400")`` — and each
distinct ``(name, labels)`` combination is its own series.  Snapshots
key series by their Prometheus-style *series key*
(``name{status="400"}``, label keys sorted); :func:`parse_series_key`
recovers the structured form, which is what the exposition layer
(:mod:`repro.obs.prom`) and snapshot merging use.

**Histograms.**  :class:`Histogram` keeps exact count/sum/min/max *and*
a fixed log-spaced bucket vector (:data:`HISTOGRAM_BUCKET_BOUNDS`,
shared by every histogram in every process).  Because the boundaries
are global constants, worker snapshots merge *exactly* — merging the
bucket vectors of two histograms equals the bucket vector of observing
both streams into one histogram — which is what makes the reported
p50/p90/p99 quantile estimates meaningful after a
``ProcessPoolExecutor`` snapshot-merge.

``ProcessPoolExecutor`` paths cannot share a registry across process
boundaries, so workers build a *local* :class:`MetricsRegistry`, return
``registry.snapshot()`` next to their payload, and the parent folds the
snapshots in with :meth:`MetricsRegistry.merge_snapshot` (counters add,
gauges last-write-wins, histograms pool moments and add buckets).  See
:mod:`repro.parallel.count` for the pattern in use.

Disabled instrumentation uses :data:`NULL_REGISTRY`: ``counter()`` /
``gauge()`` / ``histogram()`` hand back a shared no-op metric, so hot
paths pay one method call and no allocation.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Iterable, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HISTOGRAM_BUCKET_BOUNDS",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "merge_snapshots",
    "series_key",
    "parse_series_key",
]


# ----------------------------------------------------------------------
# Series keys (name + labels <-> flat snapshot key)
# ----------------------------------------------------------------------

_LABEL_RE = re.compile(r'(\w[\w.]*)="((?:[^"\\]|\\.)*)"')
_KEY_RE = re.compile(r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$")


_UNESCAPE_RE = re.compile(r"\\(.)")


def _escape_label(value: Any) -> str:
    # Newlines are escaped too so a series key is always one line (the
    # key regexes and the Prometheus renderer both rely on this).
    return (
        str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape_label(value: str) -> str:
    return _UNESCAPE_RE.sub(lambda m: "\n" if m.group(1) == "n" else m.group(1), value)


def series_key(name: str, labels: Optional[dict[str, Any]] = None) -> str:
    """The flat snapshot key for one series: ``name`` or ``name{k="v"}``.

    Label keys are sorted, so the key is canonical — the same
    ``(name, labels)`` pair always produces the same string, in every
    process (the property snapshot merging relies on).
    """
    if not labels:
        return name
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


def parse_series_key(key: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`series_key`: ``'a{b="c"}'`` → ``('a', {'b': 'c'})``."""
    m = _KEY_RE.match(key)
    if m is None:  # pragma: no cover - _KEY_RE matches any non-empty string
        return key, {}
    raw = m.group("labels")
    if raw is None:
        return m.group("name"), {}
    labels = {k: _unescape_label(v) for k, v in _LABEL_RE.findall(raw)}
    return m.group("name"), labels


# ----------------------------------------------------------------------
# Metric kinds
# ----------------------------------------------------------------------


class Counter:
    """Monotonically increasing integer metric (optionally labeled)."""

    __slots__ = ("name", "labels", "key", "value", "_lock")

    def __init__(self, name: str, labels: Optional[dict[str, Any]] = None):
        self.name = name
        self.labels = dict(labels or {})
        self.key = series_key(name, self.labels)
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n


class Gauge:
    """Last-written value metric (e.g. a size or a configuration knob)."""

    __slots__ = ("name", "labels", "key", "value", "_lock")

    def __init__(self, name: str, labels: Optional[dict[str, Any]] = None):
        self.name = name
        self.labels = dict(labels or {})
        self.key = series_key(name, self.labels)
        self.value: float | int | None = None
        self._lock = threading.Lock()

    def set(self, value: float | int) -> None:
        with self._lock:
            self.value = value


def _bucket_bounds() -> tuple[float, ...]:
    """Fixed log-spaced upper bounds: 3 per decade over [1e-9, 1e12].

    Global constants (not per-histogram) on purpose: every histogram in
    every process shares them, so bucket vectors add exactly under
    snapshot merging — no ad-hoc boundary reconciliation, ever.
    """
    bounds = []
    for e3 in range(_LOW_EXP * _PER_DECADE, _HIGH_EXP * _PER_DECADE + 1):
        bounds.append(10.0 ** (e3 / _PER_DECADE))
    return tuple(bounds)


_PER_DECADE = 3
_LOW_EXP = -9
_HIGH_EXP = 12

#: Shared histogram bucket upper bounds (the last bucket, index
#: ``len(HISTOGRAM_BUCKET_BOUNDS)``, is the +inf overflow bucket).
HISTOGRAM_BUCKET_BOUNDS: tuple[float, ...] = _bucket_bounds()

_N_BUCKETS = len(HISTOGRAM_BUCKET_BOUNDS) + 1  # + overflow
_LOG_OFFSET = -_LOW_EXP * _PER_DECADE


def _bucket_index(value: float) -> int:
    """Index of the first bucket whose upper bound is >= ``value``."""
    if value <= HISTOGRAM_BUCKET_BOUNDS[0]:
        return 0
    if value > HISTOGRAM_BUCKET_BOUNDS[-1]:
        return _N_BUCKETS - 1
    # ceil(log10(v) * 3) + offset; the epsilon nudge keeps exact bucket
    # boundaries (1.0, 10.0, ...) in their own bucket despite float log
    # rounding either way.
    idx = math.ceil(math.log10(value) * _PER_DECADE - 1e-9) + _LOG_OFFSET
    idx = max(0, min(idx, _N_BUCKETS - 1))
    # log10 rounding can land one bucket off near boundaries; fix up.
    while idx > 0 and value <= HISTOGRAM_BUCKET_BOUNDS[idx - 1]:
        idx -= 1
    while idx < _N_BUCKETS - 1 and value > HISTOGRAM_BUCKET_BOUNDS[idx]:
        idx += 1
    return idx


class Histogram:
    """Streaming summary: exact moments + fixed log-spaced buckets.

    count / sum / min / max are exact; the bucket vector (shared global
    boundaries :data:`HISTOGRAM_BUCKET_BOUNDS`) supports merge-exact
    p50/p90/p99 estimates — quantiles are interpolated log-linearly
    inside the bucket that crosses the target rank, then clamped to the
    exact [min, max] envelope.
    """

    __slots__ = ("name", "labels", "key", "count", "sum", "min", "max", "_buckets", "_lock")

    def __init__(self, name: str, labels: Optional[dict[str, Any]] = None):
        self.name = name
        self.labels = dict(labels or {})
        self.key = series_key(name, self.labels)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._buckets: dict[int, int] = {}
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        idx = _bucket_index(value)
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            self._buckets[idx] = self._buckets.get(idx, 0) + 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def buckets(self) -> dict[int, int]:
        """Sparse bucket counts (index into the global bounds → count)."""
        with self._lock:
            return dict(self._buckets)

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 < q <= 1``) from the buckets."""
        with self._lock:
            return self._quantile_locked(q)

    def _quantile_locked(self, q: float) -> float:
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for idx in sorted(self._buckets):
            n = self._buckets[idx]
            seen += n
            if seen >= target:
                lo = HISTOGRAM_BUCKET_BOUNDS[idx - 1] if idx > 0 else None
                hi = (
                    HISTOGRAM_BUCKET_BOUNDS[idx]
                    if idx < _N_BUCKETS - 1
                    else self.max
                )
                if lo is None or lo <= 0 or hi <= 0:
                    est = hi
                else:
                    # log-linear interpolation of the within-bucket rank
                    frac = 1.0 - (seen - target) / n
                    est = 10 ** (math.log10(lo) + frac * (math.log10(hi) - math.log10(lo)))
                return float(min(max(est, self.min), self.max))
        return float(self.max)  # pragma: no cover - loop always crosses target

    def merge(self, summary: dict[str, Any]) -> None:
        """Fold a snapshot summary (another histogram's) into this one.

        Exact for the moments; exact for the buckets too whenever the
        incoming summary carries them (both sides share the global
        boundaries).  Legacy moments-only summaries still merge their
        moments; their observations just don't contribute to quantiles.
        """
        if not summary.get("count"):
            return
        with self._lock:
            self.count += summary["count"]
            self.sum += summary["sum"]
            self.min = min(self.min, summary["min"])
            self.max = max(self.max, summary["max"])
            for idx, n in summary.get("buckets", {}).items():
                idx = int(idx)
                self._buckets[idx] = self._buckets.get(idx, 0) + int(n)

    def summary(self) -> dict[str, Any]:
        with self._lock:
            if not self.count:
                return {
                    "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
                    "p50": 0.0, "p90": 0.0, "p99": 0.0, "buckets": {},
                }
            return {
                "count": self.count,
                "sum": self.sum,
                "min": self.min,
                "max": self.max,
                "mean": self.sum / self.count,
                "p50": self._quantile_locked(0.50),
                "p90": self._quantile_locked(0.90),
                "p99": self._quantile_locked(0.99),
                # JSON object keys are strings; merge() int()s them back.
                "buckets": {str(i): self._buckets[i] for i in sorted(self._buckets)},
            }


class MetricsRegistry:
    """Get-or-create home for named metric series; snapshot/merge for export.

    Thread-safe: creation is guarded by a registry lock, updates by
    per-metric locks.  Asking twice for the same ``(name, labels)``
    returns the same object; asking for a series already registered as
    a different kind raises ``TypeError`` (metric names are a schema,
    not a namespace).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return True

    def _get_or_create(self, name: str, cls, labels: Optional[dict[str, Any]]):
        key = series_key(name, labels)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = self._metrics[key] = cls(name, labels)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {key!r} already registered as {type(metric).__name__}, "
                    f"not {cls.__name__}"
                )
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(name, Counter, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(name, Gauge, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get_or_create(name, Histogram, labels)

    # -- export / aggregation -------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict state keyed by series key: the record's ``metrics``."""
        counters: dict[str, int] = {}
        gauges: dict[str, Any] = {}
        histograms: dict[str, dict[str, Any]] = {}
        with self._lock:
            metrics = list(self._metrics.values())
        for m in metrics:
            if isinstance(m, Counter):
                counters[m.key] = m.value
            elif isinstance(m, Gauge):
                gauges[m.key] = m.value
            else:
                histograms[m.key] = m.summary()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge_snapshot(self, snap: dict[str, Any]) -> None:
        """Fold a worker snapshot into this registry.

        Counters add, gauges take the incoming value, histograms pool
        moments and add bucket vectors — exactly the reductions that
        make per-worker measurement order-independent.  Labeled series
        merge into the matching labeled series (keys are canonical).
        """
        for key, value in snap.get("counters", {}).items():
            name, labels = parse_series_key(key)
            self.counter(name, **labels).inc(value)
        for key, value in snap.get("gauges", {}).items():
            if value is not None:
                name, labels = parse_series_key(key)
                self.gauge(name, **labels).set(value)
        for key, s in snap.get("histograms", {}).items():
            name, labels = parse_series_key(key)
            self.histogram(name, **labels).merge(s)


class _NullMetric:
    """Shared no-op counter/gauge/histogram."""

    __slots__ = ()

    name = "null"
    labels: dict[str, Any] = {}
    key = "null"
    value = 0
    count = 0
    sum = 0.0
    mean = 0.0

    def inc(self, n: int = 1) -> None:
        return None

    def set(self, value: float | int) -> None:
        return None

    def observe(self, value: float) -> None:
        return None

    def buckets(self) -> dict[int, int]:
        return {}

    def quantile(self, q: float) -> float:
        return 0.0

    def merge(self, summary: dict[str, Any]) -> None:
        return None

    def summary(self) -> dict[str, Any]:
        return {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
            "p50": 0.0, "p90": 0.0, "p99": 0.0, "buckets": {},
        }


class NullRegistry:
    """Disabled registry: every metric is the shared no-op metric."""

    __slots__ = ()

    @property
    def enabled(self) -> bool:
        return False

    def counter(self, name: str, **labels: Any) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, **labels: Any) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, **labels: Any) -> _NullMetric:
        return _NULL_METRIC

    def snapshot(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge_snapshot(self, snap: dict[str, Any]) -> None:
        return None


_NULL_METRIC = _NullMetric()
NULL_REGISTRY = NullRegistry()


def merge_snapshots(snaps: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Reduce worker snapshots into one snapshot (fresh registry)."""
    reg = MetricsRegistry()
    for snap in snaps:
        reg.merge_snapshot(snap)
    return reg.snapshot()
