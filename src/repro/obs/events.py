"""Structured telemetry events: bounded ring buffer + JSONL flusher.

The third leg of the observability layer (spans = where time went,
metrics = how much happened, **events = what happened, when**).  An
:class:`EventLog` accepts schema-versioned telemetry events — shard
started/completed/retried, block streamed, queue shed, cache eviction —
into a bounded in-memory ring and flushes them to an append-only JSONL
file from a background thread.  One JSON object per line::

    {"schema": "repro.events/1", "run_id": "1a2b3c4d5e6f", "pid": 1234,
     "seq": 17, "t": 1754611200.123, "mono": 8.456,
     "kind": "shard.completed", "index": 3, "entries": 1440}

Design constraints (docs/observability.md):

* **Bounded.**  The ring holds at most ``capacity`` unflushed events;
  when producers outrun the flusher the *oldest* pending events are
  dropped and counted (``dropped``), so a hot loop can never grow the
  process without bound.
* **Crash-safe.**  The file is opened ``O_APPEND`` and every flush is a
  single :func:`os.write` of fully rendered ``\\n``-terminated lines —
  a worker killed between flushes loses at most the unflushed tail and
  can never leave a torn line for ``repro top`` or the CI artifact
  reader to trip over (asserted in the crash-resume drill).
* **Cheap when disabled.**  The default process-wide log is
  :data:`NULL_EVENTS`; instrumented call sites pay one attribute read
  and a no-op call.  Gate per-block emission on ``events.enabled`` the
  same way hot paths gate metrics.

:func:`read_events` is the reading half: it parses a JSONL event file,
skipping (or, with ``strict=True``, raising on) torn lines.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from collections import deque
from typing import Any, Optional

__all__ = ["EVENTS_SCHEMA", "EventLog", "NullEventLog", "NULL_EVENTS", "read_events"]

#: Schema tag stamped into every event line (versioned like ``repro.serve/1``).
EVENTS_SCHEMA = "repro.events/1"


class EventLog:
    """Bounded ring of telemetry events with a background JSONL flusher.

    Parameters
    ----------
    path:
        JSONL file to append to.  ``None`` keeps events in memory only
        (``tail()`` still works — useful in tests and embedded use).
    capacity:
        Ring bound on *unflushed* events; beyond it the oldest pending
        events are dropped and tallied in :attr:`dropped`.
    flush_interval:
        Seconds between background flushes.  ``emit`` never blocks on
        I/O; ``flush()`` forces a synchronous drain.
    run_id:
        Correlation id stamped on every event (fresh 12-hex default).
    """

    enabled = True

    def __init__(
        self,
        path: Optional[str | os.PathLike] = None,
        *,
        capacity: int = 4096,
        flush_interval: float = 0.25,
        run_id: Optional[str] = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.path = os.fspath(path) if path is not None else None
        self.capacity = capacity
        self.flush_interval = flush_interval
        self.run_id = run_id or uuid.uuid4().hex[:12]
        self.dropped = 0
        self._seq = 0
        self._pending: deque[dict[str, Any]] = deque()
        self._recent: deque[dict[str, Any]] = deque(maxlen=min(capacity, 512))
        self._lock = threading.Lock()
        # Serializes drain+write so the background flusher and an
        # explicit flush() can never interleave their batches on disk
        # (each would write complete lines, but out of seq order).
        self._io_lock = threading.Lock()
        self._wake = threading.Event()
        self._closed = False
        self._fd: Optional[int] = None
        self._flusher: Optional[threading.Thread] = None
        if self.path is not None:
            self._fd = os.open(self.path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)

    # ------------------------------------------------------------------
    # Producing
    # ------------------------------------------------------------------

    def emit(self, kind: str, **fields: Any) -> dict[str, Any]:
        """Record one event; returns the event dict (already enqueued).

        Never blocks on I/O: the event lands in the ring and the
        background flusher (started lazily) writes it out.  Reserved
        keys (``schema``/``run_id``/``pid``/``seq``/``t``/``mono``/
        ``kind``) cannot be overridden by ``fields``.
        """
        event: dict[str, Any] = {
            "schema": EVENTS_SCHEMA,
            "run_id": self.run_id,
            "pid": os.getpid(),
            "kind": kind,
            "t": time.time(),
            "mono": time.monotonic(),
        }
        for key, value in fields.items():
            if key not in event and key != "seq":
                event[key] = value
        with self._lock:
            if self._closed:
                return event
            event["seq"] = self._seq
            self._seq += 1
            if len(self._pending) >= self.capacity:
                self._pending.popleft()
                self.dropped += 1
            self._pending.append(event)
            self._recent.append(event)
            if self._fd is not None and self._flusher is None:
                self._flusher = threading.Thread(
                    target=self._flush_loop, name="repro-events-flusher", daemon=True
                )
                self._flusher.start()
        self._wake.set()
        return event

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------

    def _drain(self) -> list[dict[str, Any]]:
        with self._lock:
            batch = list(self._pending)
            self._pending.clear()
        return batch

    def _write(self, batch: list[dict[str, Any]]) -> None:
        if self._fd is None or not batch:
            return
        # One os.write of complete lines per flush: a crash between
        # flushes drops whole events, never half a line.
        data = "".join(
            json.dumps(event, separators=(",", ":"), sort_keys=False) + "\n"
            for event in batch
        ).encode("utf-8")
        os.write(self._fd, data)

    def _flush_loop(self) -> None:
        while True:
            self._wake.wait(self.flush_interval)
            self._wake.clear()
            with self._lock:
                closed = self._closed
            self.flush()
            if closed:
                return

    def flush(self) -> None:
        """Synchronously drain the ring to disk (no-op without a path)."""
        with self._io_lock:
            self._write(self._drain())

    def close(self) -> None:
        """Final flush, stop the flusher, close the file descriptor."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._wake.set()
        if self._flusher is not None:
            self._flusher.join(timeout=5.0)
        self.flush()
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def tail(self, n: int = 32) -> list[dict[str, Any]]:
        """The most recent ``n`` events (flushed or not), oldest first."""
        with self._lock:
            recent = list(self._recent)
        return recent[-n:]


class NullEventLog:
    """Disabled event log: ``emit`` is a no-op, ``tail`` is empty."""

    __slots__ = ()

    enabled = False
    path = None
    run_id = "null"
    dropped = 0

    def emit(self, kind: str, **fields: Any) -> dict[str, Any]:
        return {}

    def flush(self) -> None:
        return None

    def close(self) -> None:
        return None

    def tail(self, n: int = 32) -> list[dict[str, Any]]:
        return []


NULL_EVENTS = NullEventLog()


def read_events(
    path: str | os.PathLike, *, strict: bool = False
) -> list[dict[str, Any]]:
    """Parse a JSONL event file into a list of event dicts.

    Torn or non-JSON lines are skipped by default (``strict=True``
    raises ``ValueError`` naming the offending line number instead) —
    but note the writer's single-write discipline means torn lines
    indicate an unclean copy, not a crashed run.
    """
    events: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                if strict:
                    raise ValueError(f"{path}:{lineno}: torn event line: {exc}") from exc
                continue
            if isinstance(event, dict):
                events.append(event)
            elif strict:
                raise ValueError(f"{path}:{lineno}: event is not a JSON object")
    return events
