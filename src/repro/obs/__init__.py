"""Structured observability: spans, metrics, events, run records, exposition.

The measurement layer the ROADMAP's scaling work hangs off.  Five
pieces, one switch:

* :mod:`repro.obs.span` — nested, named, thread-safe :class:`Span`
  timing (subsumes the old ``repro.utils.timing.Timer``, which is now a
  thin alias) collected into trees by a :class:`Tracer`.
* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry`
  of labeled counters / gauges / fixed-bucket quantile histograms with
  exact snapshot-merge across ``ProcessPoolExecutor`` workers.
* :mod:`repro.obs.events` — a bounded-ring :class:`EventLog` flushing
  schema-versioned JSONL telemetry events (shard lifecycle, retries,
  queue shed, cache eviction) that ``repro top`` tails live.
* :mod:`repro.obs.record` — exporters: a human console tree and a
  JSON *run record* (run id, git rev, config, env, spans, metrics)
  that the benchmark harness persists as ``BENCH_<name>.json``.
* :mod:`repro.obs.prom` — Prometheus text exposition + scrape-format
  lint behind ``repro serve``'s ``/metrics?format=prometheus``.

Instrumentation is **off by default**: :func:`get_tracer` /
:func:`get_metrics` / :func:`get_events` return null implementations
whose methods are no-ops, so the instrumented hot paths (streaming,
oracle, parallel) cost nothing extra in correctness runs.  Turn it on
with the scoped :func:`instrument` / :func:`events_to` context managers
(what the CLI's ``--profile`` / ``--metrics-out`` / ``--events-out``
flags do) or process-wide :func:`enable`.  The one exception is
``repro serve``, which installs a live registry unconditionally —
production serving must be observable without a restart.

Naming conventions and the record schema live in docs/observability.md.
"""

from repro.obs.events import (
    EVENTS_SCHEMA,
    NULL_EVENTS,
    EventLog,
    NullEventLog,
    read_events,
)
from repro.obs.metrics import (
    HISTOGRAM_BUCKET_BOUNDS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    merge_snapshots,
    parse_series_key,
    series_key,
)
from repro.obs.prom import lint_exposition, render_prometheus
from repro.obs.record import (
    SCHEMA_VERSION,
    build_run_record,
    collect_env,
    git_revision,
    load_run_record,
    render_run_record,
    validate_run_record,
    write_run_record,
)
from repro.obs.runtime import (
    disable,
    enable,
    events_to,
    get_events,
    get_metrics,
    get_tracer,
    instrument,
    is_enabled,
)
from repro.obs.span import NULL_SPAN, NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "HISTOGRAM_BUCKET_BOUNDS",
    "merge_snapshots",
    "series_key",
    "parse_series_key",
    "EventLog",
    "NullEventLog",
    "NULL_EVENTS",
    "EVENTS_SCHEMA",
    "read_events",
    "render_prometheus",
    "lint_exposition",
    "SCHEMA_VERSION",
    "build_run_record",
    "collect_env",
    "git_revision",
    "load_run_record",
    "render_run_record",
    "validate_run_record",
    "write_run_record",
    "get_tracer",
    "get_metrics",
    "get_events",
    "instrument",
    "events_to",
    "enable",
    "disable",
    "is_enabled",
]
