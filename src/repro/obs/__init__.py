"""Structured observability: spans, metrics, machine-readable run records.

The measurement layer the ROADMAP's scaling work hangs off.  Three
pieces, one switch:

* :mod:`repro.obs.span` — nested, named, thread-safe :class:`Span`
  timing (subsumes the old ``repro.utils.timing.Timer``, which is now a
  thin alias) collected into trees by a :class:`Tracer`.
* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry`
  of counters / gauges / histograms with snapshot-merge hooks for
  ``ProcessPoolExecutor`` workers.
* :mod:`repro.obs.record` — exporters: a human console tree and a
  JSON *run record* (run id, git rev, config, env, spans, metrics)
  that the benchmark harness persists as ``BENCH_<name>.json``.

Instrumentation is **off by default**: :func:`get_tracer` /
:func:`get_metrics` return null implementations whose methods are
no-ops, so the instrumented hot paths (streaming, oracle, parallel)
cost nothing extra in correctness runs.  Turn it on with the scoped
:func:`instrument` context manager (what the CLI's ``--profile`` /
``--metrics-out`` flags do) or process-wide :func:`enable`.

Naming conventions and the record schema live in docs/observability.md.
"""

from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    merge_snapshots,
)
from repro.obs.record import (
    SCHEMA_VERSION,
    build_run_record,
    collect_env,
    git_revision,
    load_run_record,
    render_run_record,
    validate_run_record,
    write_run_record,
)
from repro.obs.runtime import disable, enable, get_metrics, get_tracer, instrument, is_enabled
from repro.obs.span import NULL_SPAN, NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "merge_snapshots",
    "SCHEMA_VERSION",
    "build_run_record",
    "collect_env",
    "git_revision",
    "load_run_record",
    "render_run_record",
    "validate_run_record",
    "write_run_record",
    "get_tracer",
    "get_metrics",
    "instrument",
    "enable",
    "disable",
    "is_enabled",
]
