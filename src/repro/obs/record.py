"""Machine-readable run records and the human console tree.

A *run record* is one JSON document describing one instrumented run —
the artifact the benchmark harness writes as ``BENCH_<name>.json`` and
the CLI writes for ``--metrics-out``.  Schema (version 1)::

    {
      "schema_version": 1,
      "run_id":    "<12 hex chars>",
      "name":      "<what ran>",
      "created_at": "<ISO-8601 UTC>",
      "git_rev":   "<commit sha or null>",
      "config":    {...},            # caller-supplied (argv, factors, ...)
      "env":       {python, platform, numpy, scipy, cpu_count},
      "spans":     [<span dict>...], # nested: name/elapsed_s/status/...
      "metrics":   {counters: {...}, gauges: {...}, histograms: {...}},
    }

Records are diffable across PRs: everything except ``run_id`` /
``created_at`` / elapsed numbers is stable for a given commit and
config.  :func:`validate_run_record` is the schema's executable half —
CI runs it against the benchmark output.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import uuid
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

__all__ = [
    "SCHEMA_VERSION",
    "collect_env",
    "git_revision",
    "build_run_record",
    "write_run_record",
    "load_run_record",
    "validate_run_record",
    "render_run_record",
]

SCHEMA_VERSION = 1


def collect_env() -> dict[str, Any]:
    """Versions and hardware facts worth pinning next to timings."""
    env: dict[str, Any] = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }
    for mod in ("numpy", "scipy"):
        try:
            env[mod] = __import__(mod).__version__
        except Exception:  # pragma: no cover - baked into the image
            env[mod] = None
    return env


def git_revision(cwd: str | os.PathLike | None = None) -> str | None:
    """Current commit sha, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=cwd,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def build_run_record(
    name: str,
    tracer=None,
    metrics=None,
    config: dict[str, Any] | None = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble a schema-1 run record from live instrumentation state.

    ``tracer`` / ``metrics`` default to the process-wide pair; pass the
    objects explicitly when using scoped :func:`repro.obs.instrument`.
    ``extra`` keys are merged at the top level (the benchmark harness
    uses this for its per-bench result rows).
    """
    from repro.obs.runtime import get_metrics, get_tracer

    tracer = get_tracer() if tracer is None else tracer
    metrics = get_metrics() if metrics is None else metrics
    record: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "run_id": uuid.uuid4().hex[:12],
        "name": name,
        "created_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_rev": git_revision(),
        "config": dict(config or {}),
        "env": collect_env(),
        "spans": tracer.to_dicts(),
        "metrics": metrics.snapshot(),
    }
    if extra:
        record.update(extra)
    return record


def write_run_record(record: dict[str, Any], path: str | os.PathLike) -> Path:
    """Write a record as pretty JSON (+ trailing newline for diffs)."""
    problems = validate_run_record(record)
    if problems:
        raise ValueError(f"refusing to write invalid run record: {problems}")
    path = Path(path)
    path.write_text(json.dumps(record, indent=2, sort_keys=False) + "\n", encoding="utf-8")
    return path


def load_run_record(path: str | os.PathLike) -> dict[str, Any]:
    """Read and validate a run record; raises ``ValueError`` on schema drift."""
    record = json.loads(Path(path).read_text(encoding="utf-8"))
    problems = validate_run_record(record)
    if problems:
        raise ValueError(f"{path}: invalid run record: {problems}")
    return record


def _check_span(span: Any, problems: list[str], where: str) -> None:
    if not isinstance(span, dict):
        problems.append(f"{where}: span is not an object")
        return
    if not isinstance(span.get("name"), str):
        problems.append(f"{where}: span missing string 'name'")
    if not isinstance(span.get("elapsed_s"), (int, float)):
        problems.append(f"{where}: span missing numeric 'elapsed_s'")
    for i, child in enumerate(span.get("children", [])):
        _check_span(child, problems, f"{where}.children[{i}]")


def validate_run_record(record: Any) -> list[str]:
    """Return a list of schema problems (empty == valid)."""
    problems: list[str] = []
    if not isinstance(record, dict):
        return ["record is not a JSON object"]
    if record.get("schema_version") != SCHEMA_VERSION:
        problems.append(f"schema_version != {SCHEMA_VERSION}")
    for key, typ in (
        ("run_id", str),
        ("name", str),
        ("created_at", str),
        ("config", dict),
        ("env", dict),
        ("spans", list),
        ("metrics", dict),
    ):
        if not isinstance(record.get(key), typ):
            problems.append(f"missing or mistyped field {key!r} (want {typ.__name__})")
    if isinstance(record.get("spans"), list):
        for i, span in enumerate(record["spans"]):
            _check_span(span, problems, f"spans[{i}]")
    if isinstance(record.get("metrics"), dict):
        for section in ("counters", "gauges", "histograms"):
            if not isinstance(record["metrics"].get(section), dict):
                problems.append(f"metrics missing section {section!r}")
    return problems


# ----------------------------------------------------------------------
# Console rendering
# ----------------------------------------------------------------------


def _render_span(span: dict[str, Any], depth: int, lines: list[str]) -> None:
    pad = "  " * depth
    mark = "" if span.get("status", "ok") == "ok" else "  [ERROR]"
    lines.append(f"{pad}{span['name']:<{max(1, 34 - 2 * depth)}} {span['elapsed_s']*1e3:10.3f} ms{mark}")
    extras = {**span.get("attrs", {}), **span.get("counters", {})}
    if extras:
        rendered = ", ".join(f"{k}={v}" for k, v in extras.items())
        lines.append(f"{pad}  · {rendered}")
    for child in span.get("children", []):
        _render_span(child, depth + 1, lines)


def render_run_record(record: dict[str, Any], file=None) -> str:
    """Human console tree: spans first, then the metric tables.

    Returns the rendered string; also prints it to ``file`` if given
    (the CLI passes ``sys.stderr`` for ``--profile``).
    """
    lines = [f"== run {record['run_id']} · {record['name']} =="]
    if record.get("git_rev"):
        lines.append(f"git {record['git_rev'][:12]} · {record['created_at']}")
    if record["spans"]:
        lines.append("-- spans --")
        for span in record["spans"]:
            _render_span(span, 1, lines)
    m = record["metrics"]
    if m["counters"]:
        lines.append("-- counters --")
        for name in sorted(m["counters"]):
            lines.append(f"  {name:<38} {m['counters'][name]:>14,}")
    if m["gauges"]:
        lines.append("-- gauges --")
        for name in sorted(m["gauges"]):
            lines.append(f"  {name:<38} {m['gauges'][name]}")
    if m["histograms"]:
        lines.append("-- histograms --")
        for name in sorted(m["histograms"]):
            s = m["histograms"][name]
            line = (
                f"  {name:<38} n={s['count']} mean={s['mean']:.6g} "
                f"min={s['min']:.6g} max={s['max']:.6g}"
            )
            if "p50" in s:
                line += f" p50={s['p50']:.6g} p99={s['p99']:.6g}"
            lines.append(line)
    text = "\n".join(lines)
    if file is not None:
        print(text, file=file)
    return text


def _validator_main(argv=None) -> int:
    """Validate run-record files from the shell (``python -m repro.obs FILE...``)."""
    rc = 0
    for arg in sys.argv[1:] if argv is None else argv:
        try:
            load_run_record(arg)
            print(f"{arg}: ok")
        except (ValueError, OSError, json.JSONDecodeError) as exc:
            print(f"{arg}: INVALID: {exc}", file=sys.stderr)
            rc = 1
    return rc


if __name__ == "__main__":  # pragma: no cover - tiny validator CLI for CI
    sys.exit(_validator_main())
