"""Nested, named, thread-safe tracing spans.

A :class:`Span` is the observability layer's unit of wall-clock
accounting: a reusable context manager measuring elapsed seconds, with
optional attributes (``sp.set(rows=128)``) and span-local counters
(``sp.count("blocks")``).  Used standalone it behaves exactly like the
old :class:`repro.utils.timing.Timer` (which is now a thin alias).

A :class:`Tracer` strings spans into per-thread trees: ``tracer.span()``
opens a child of whichever span the *current thread* has open, so
library code can open spans without threading a parent handle through
every call.  Each thread builds its own root list; the tracer merges
them at export time.

Disabled instrumentation goes through :class:`NullTracer` /
:data:`NULL_SPAN`, whose methods are no-ops — hot paths pay one
attribute call per operation and nothing else (the "zero overhead when
disabled" contract tested in ``tests/obs/test_span.py``).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Iterator

__all__ = ["Span", "Tracer", "NullTracer", "NULL_SPAN", "NULL_TRACER"]


class Span:
    """Context manager measuring one named unit of work.

    Example
    -------
    >>> with Span("stream") as sp:
    ...     sp.count("blocks")
    ...     sp.set(edges=42)
    >>> sp.elapsed >= 0.0
    True
    """

    __slots__ = ("name", "attrs", "counters", "children", "status", "start", "elapsed", "_tracer")

    def __init__(self, name: str = "span", _tracer: "Tracer | None" = None, **attrs: Any):
        self.name = name
        self.attrs: dict[str, Any] = dict(attrs)
        self.counters: dict[str, int] = {}
        self.children: list[Span] = []
        self.status = "ok"
        self.start: float | None = None
        self.elapsed: float = 0.0
        self._tracer = _tracer

    # -- context protocol ------------------------------------------------

    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer._push(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.start is None:
            # Explicit raise (not ``assert``) so the guard survives
            # ``python -O``; exiting a never-entered span is a bug.
            raise RuntimeError(f"span {self.name!r} exited without being entered")
        self.elapsed = time.perf_counter() - self.start
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("exception", exc_type.__name__)
        if self._tracer is not None:
            self._tracer._pop(self)

    # -- enrichment ------------------------------------------------------

    def set(self, **attrs: Any) -> "Span":
        """Attach custom attributes; returns ``self`` for chaining."""
        self.attrs.update(attrs)
        return self

    def count(self, name: str, n: int = 1) -> None:
        """Increment a span-local counter."""
        self.counters[name] = self.counters.get(name, 0) + n

    # -- export ----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Recursive plain-dict form (the run-record span schema)."""
        d: dict[str, Any] = {
            "name": self.name,
            "elapsed_s": self.elapsed,
            "status": self.status,
        }
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        if self.counters:
            d["counters"] = dict(self.counters)
        if self.children:
            d["children"] = [c.to_dict() for c in self.children]
        return d

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, elapsed={self.elapsed:.6f}s)"


class Tracer:
    """Collects spans into per-thread trees.

    ``tracer.span(name)`` returns a :class:`Span` that, when entered,
    becomes a child of the thread's innermost open span (or a new root).
    The per-thread stack lives in ``threading.local``; the shared root
    list is guarded by a lock, so concurrent threads trace safely.
    """

    def __init__(self) -> None:
        self._roots: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    @property
    def enabled(self) -> bool:
        return True

    def span(self, name: str, **attrs: Any) -> Span:
        """A new span parented (on entry) under the current thread's stack."""
        return Span(name, _tracer=self, **attrs)

    # -- stack plumbing (called by Span.__enter__/__exit__) --------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - exotic misuse
            stack.remove(span)

    # -- export ----------------------------------------------------------

    @property
    def current(self) -> Span | None:
        """The current thread's innermost open span, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def roots(self) -> list[Span]:
        with self._lock:
            return list(self._roots)

    def to_dicts(self) -> list[dict[str, Any]]:
        return [root.to_dict() for root in self.roots()]

    def find(self, name: str) -> Span | None:
        """First span with ``name`` in depth-first root order."""
        for root in self.roots():
            for sp in root.walk():
                if sp.name == name:
                    return sp
        return None


class _NullSpan:
    """Stateless no-op span; a single shared instance serves everyone."""

    __slots__ = ()

    name = "null"
    elapsed = 0.0
    start: float | None = None
    status = "ok"

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def count(self, name: str, n: int = 1) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullSpan()"


class NullTracer:
    """Disabled tracer: every ``span()`` is the shared no-op span."""

    __slots__ = ()

    @property
    def enabled(self) -> bool:
        return False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    @property
    def current(self):
        return None

    def roots(self) -> list[Span]:
        return []

    def to_dicts(self) -> list[dict[str, Any]]:
        return []

    def find(self, name: str) -> None:
        return None


NULL_SPAN = _NullSpan()
NULL_TRACER = NullTracer()
