"""Validation-as-a-service: fuzz any 4-cycle counter against ground truth.

The paper's central use case (§I): "researchers can use these
generators and formulas to validate their novel algorithms and
implementations."  This module packages that workflow: hand it *your*
counting function, it generates a battery of bipartite Kronecker
products whose answers are known exactly, runs your function on the
materialized graphs, and reports every disagreement with a minimal
reproducing case.

Three counter shapes are supported:

* **global**  -- ``fn(BipartiteGraph) -> int`` (total 4-cycles),
* **vertex**  -- ``fn(BipartiteGraph) -> array of per-vertex counts``,
* **edge**    -- ``fn(BipartiteGraph) -> {(u, w): count}`` over edges
  with ``u`` in the ``U`` part.

The battery mixes both assumption regimes, several factor families and
sizes, so off-by-one, diagonal-leak and transposition bugs all have a
product that exposes them (see ``tests/test_validation.py`` for
injected-bug coverage).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.generators.classic import complete_bipartite, cycle_graph, path_graph, star_graph
from repro.generators.scale_free import (
    scale_free_bipartite_factor,
    scale_free_nonbipartite_factor,
)
from repro.kronecker.assumptions import Assumption, BipartiteKronecker, make_bipartite_product
from repro.kronecker.ground_truth import edge_squares_product, global_squares_product, vertex_squares_product

__all__ = ["ValidationCase", "ValidationReport", "standard_battery", "validate_counter"]


@dataclass(frozen=True)
class ValidationCase:
    """One product in the battery."""

    label: str
    bk: BipartiteKronecker


@dataclass
class CaseResult:
    label: str
    passed: bool
    detail: str = ""


@dataclass
class ValidationReport:
    """Outcome of a validation run."""

    kind: str
    results: List[CaseResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    @property
    def failures(self) -> List[CaseResult]:
        return [r for r in self.results if not r.passed]

    def format(self) -> str:
        lines = [f"validation of a {self.kind} 4-cycle counter against Kronecker ground truth"]
        for r in self.results:
            mark = "PASS" if r.passed else "FAIL"
            line = f"  [{mark}] {r.label}"
            if r.detail:
                line += f"  -- {r.detail}"
            lines.append(line)
        verdict = "ALL CASES PASS" if self.passed else f"{len(self.failures)} CASE(S) FAIL"
        lines.append(verdict)
        return "\n".join(lines)


def standard_battery(seed: int = 0) -> List[ValidationCase]:
    """The default product battery.

    Mixes tiny deterministic products (minimal reproductions when a bug
    fires) with mid-size scale-free ones (heavy-tail stress), across
    both assumption regimes.
    """
    from repro.graphs.graph import Graph

    # Triangle with a pendant vertex: its product with P2 contains
    # square-free edges (◇ = 0), the only regime where pattern bugs
    # (dropping zero-count edges) are observable -- Rem. 1 makes every
    # edge of "richer" products carry squares, hiding such bugs.
    triangle_pendant = Graph.from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)])
    cases = [
        ValidationCase(
            "C3 (x) P3  [1(i), minimal]",
            make_bipartite_product(cycle_graph(3), path_graph(3), Assumption.NON_BIPARTITE_FACTOR),
        ),
        ValidationCase(
            "tri+pendant (x) P2 [1(i), square-free edges]",
            make_bipartite_product(
                triangle_pendant, path_graph(2), Assumption.NON_BIPARTITE_FACTOR
            ),
        ),
        ValidationCase(
            "C5 (x) K23 [1(i), square-rich B]",
            make_bipartite_product(
                cycle_graph(5), complete_bipartite(2, 3).graph, Assumption.NON_BIPARTITE_FACTOR
            ),
        ),
        ValidationCase(
            "(P4+I) (x) P5 [1(ii), minimal]",
            make_bipartite_product(path_graph(4), path_graph(5), Assumption.SELF_LOOPS_FACTOR),
        ),
        ValidationCase(
            "(K22+I) (x) star4 [1(ii), hub]",
            make_bipartite_product(
                complete_bipartite(2, 2).graph, star_graph(4), Assumption.SELF_LOOPS_FACTOR
            ),
        ),
        ValidationCase(
            "(sf 8x10 + I) (x) sf 6x8 [1(ii), heavy tail]",
            make_bipartite_product(
                scale_free_bipartite_factor(8, 10, 2, seed=seed),
                scale_free_bipartite_factor(6, 8, 2, seed=seed + 1),
                Assumption.SELF_LOOPS_FACTOR,
            ),
        ),
        ValidationCase(
            "sf-nonbip 9 (x) sf 7x9 [1(i), heavy tail]",
            make_bipartite_product(
                scale_free_nonbipartite_factor(9, 2, seed=seed + 2),
                scale_free_bipartite_factor(7, 9, 2, seed=seed + 3),
                Assumption.NON_BIPARTITE_FACTOR,
            ),
        ),
    ]
    return cases


def validate_counter(
    fn: Callable,
    kind: str = "global",
    battery: Optional[List[ValidationCase]] = None,
) -> ValidationReport:
    """Run ``fn`` over the battery and compare with ground truth.

    ``kind`` selects the counter contract (see module docstring).
    Exceptions raised by ``fn`` are reported as failures with the
    exception text, not propagated -- a validator should survive the
    code it is validating.
    """
    if kind not in ("global", "vertex", "edge"):
        raise ValueError(f"kind must be 'global', 'vertex' or 'edge', got {kind!r}")
    report = ValidationReport(kind=kind)
    for case in battery if battery is not None else standard_battery():
        bg = case.bk.materialize_bipartite()
        try:
            if kind == "global":
                got = int(fn(bg))
                expected = global_squares_product(case.bk)
                ok = got == expected
                detail = "" if ok else f"got {got}, ground truth {expected}"
            elif kind == "vertex":
                got_arr = np.asarray(fn(bg))
                expected_arr = vertex_squares_product(case.bk)
                ok = got_arr.shape == expected_arr.shape and np.array_equal(got_arr, expected_arr)
                if ok:
                    detail = ""
                elif got_arr.shape != expected_arr.shape:
                    detail = f"shape {got_arr.shape} != {expected_arr.shape}"
                else:
                    bad = int(np.flatnonzero(got_arr != expected_arr)[0])
                    detail = (
                        f"first mismatch at vertex {bad}: got {got_arr[bad]}, "
                        f"ground truth {expected_arr[bad]}"
                    )
            else:  # edge
                got_map = dict(fn(bg))
                dia = edge_squares_product(case.bk).tocoo()
                part = case.bk.product_part()
                expected_map = {
                    (int(r), int(c)): int(v)
                    for r, c, v in zip(dia.row, dia.col, dia.data)
                    if not part[r]  # U-side endpoint first
                }
                ok = got_map == expected_map
                if ok:
                    detail = ""
                else:
                    wrong = [
                        e for e in expected_map
                        if got_map.get(e) != expected_map[e]
                    ][:1]
                    missing_or_extra = set(got_map) ^ set(expected_map)
                    if wrong:
                        e = wrong[0]
                        detail = f"edge {e}: got {got_map.get(e)}, ground truth {expected_map[e]}"
                    else:
                        detail = f"pattern differs on {len(missing_or_extra)} edges"
        except Exception as exc:  # noqa: BLE001 - validator must not crash
            ok = False
            detail = f"raised {type(exc).__name__}: {exc}"
        report.results.append(CaseResult(label=case.label, passed=ok, detail=detail))
    return report
