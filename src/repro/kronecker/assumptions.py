"""Assumption 1 validation and the :class:`BipartiteKronecker` handle.

The paper's two recipes for connected bipartite products (§III-A):

* **Assumption 1(i)** -- ``A`` non-bipartite, undirected, connected;
  ``B`` bipartite, undirected, connected; ``C = A ⊗ B``.
* **Assumption 1(ii)** -- ``A`` and ``B`` both bipartite, undirected,
  connected; ``C = (A + I_A) ⊗ B``.

Both require the factors *loop-free* on at least the right side so the
product is loop-free (§II-B); we additionally require the raw ``A``
loop-free in case (ii) (the ``+ I_A`` is the library's job, keeping
"the bipartite factor" and "the loop-augmented factor" distinct) and in
case (i) (the paper's formulas for case (i) assume no self loops in
either factor).

:class:`BipartiteKronecker` is the user-facing object tying everything
together: it validates its inputs once, exposes the effective left
factor ``M`` (``A`` or ``A + I_A``), the implicit product, the product
bipartition, and constructors for the ground-truth, oracle, streaming
and community layers.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

import numpy as np

from repro.graphs.bipartite import BipartiteGraph, bipartition
from repro.graphs.connectivity import is_connected
from repro.graphs.graph import Graph
from repro.kronecker.product import KroneckerProduct

__all__ = ["Assumption", "make_bipartite_product", "BipartiteKronecker"]


class Assumption(Enum):
    """Which §III-A recipe a product was built under."""

    #: Assumption 1(i): non-bipartite ``A``, ``C = A ⊗ B``.
    NON_BIPARTITE_FACTOR = "1(i)"
    #: Assumption 1(ii): bipartite ``A``, ``C = (A + I_A) ⊗ B``.
    SELF_LOOPS_FACTOR = "1(ii)"


def _validate_common(A: Graph, B: Graph, require_connected: bool) -> np.ndarray:
    """Shared checks; returns B's bipartition colours."""
    if A.has_self_loops:
        raise ValueError(
            "factor A must be loop-free; the library adds I_A itself under "
            "Assumption 1(ii) (pass the raw bipartite factor)"
        )
    if B.has_self_loops:
        raise ValueError("factor B must be loop-free (paper §II-B: products of a "
                         "loop-free factor are loop-free)")
    colors_b, cert_b = bipartition(B)
    if colors_b is None:
        raise ValueError(
            f"factor B must be bipartite; found odd cycle of length {cert_b.length()}"
        )
    if require_connected:
        if not is_connected(A):
            raise ValueError("factor A must be connected (Assumption 1)")
        if not is_connected(B):
            raise ValueError("factor B must be connected (Assumption 1)")
    return colors_b


def make_bipartite_product(
    A: Graph | BipartiteGraph,
    B: Graph | BipartiteGraph,
    assumption: Assumption,
    require_connected: bool = True,
) -> "BipartiteKronecker":
    """Validate factors against ``assumption`` and build the handle.

    ``require_connected=False`` relaxes the connectivity requirement --
    the ground-truth *formulas* hold regardless (only Thms. 1-2 need
    connectivity), and the paper's own §IV experiment uses the
    disconnected ``unicode`` factor.
    """
    A_graph = A.graph if isinstance(A, BipartiteGraph) else A
    B_bip = B if isinstance(B, BipartiteGraph) else None
    B_graph = B.graph if isinstance(B, BipartiteGraph) else B

    colors_b = _validate_common(A_graph, B_graph, require_connected)
    if B_bip is None:
        # A caller-supplied BipartiteGraph keeps its own part assignment
        # (on disconnected graphs the inferred 2-colouring is not unique).
        B_bip = BipartiteGraph(B_graph, colors_b.astype(bool))

    colors_a, cert_a = bipartition(A_graph)
    if assumption is Assumption.NON_BIPARTITE_FACTOR:
        if colors_a is not None:
            raise ValueError(
                "Assumption 1(i) requires factor A non-bipartite (no odd cycle found); "
                "use Assumption.SELF_LOOPS_FACTOR for bipartite A"
            )
        A_bip: Optional[BipartiteGraph] = None
    elif assumption is Assumption.SELF_LOOPS_FACTOR:
        if colors_a is None:
            raise ValueError(
                f"Assumption 1(ii) requires factor A bipartite; found odd cycle of "
                f"length {cert_a.length()}"
            )
        A_bip = A if isinstance(A, BipartiteGraph) else BipartiteGraph(A_graph, colors_a.astype(bool))
    else:  # pragma: no cover - enum is closed
        raise ValueError(f"unknown assumption {assumption!r}")
    return BipartiteKronecker(A_graph, B_bip, assumption, A_bipartite=A_bip)


class BipartiteKronecker:
    """A validated bipartite Kronecker product ``C = M ⊗ B``.

    ``M`` is ``A`` under Assumption 1(i) and ``A + I_A`` under 1(ii).
    Do not construct directly -- use :func:`make_bipartite_product`,
    which performs the §III-A validation.
    """

    __slots__ = ("A", "B", "assumption", "A_bipartite", "M", "implicit", "_stats_cache")

    def __init__(
        self,
        A: Graph,
        B: BipartiteGraph,
        assumption: Assumption,
        A_bipartite: Optional[BipartiteGraph] = None,
    ):
        self.A = A
        self.B = B
        self.assumption = assumption
        self.A_bipartite = A_bipartite
        if assumption is Assumption.SELF_LOOPS_FACTOR:
            self.M = A.with_all_self_loops()
        else:
            self.M = A
        self.implicit = KroneckerProduct(self.M, B.graph)
        # Per-factor statistics memo, filled lazily by factor_stats();
        # safe because Graph/BipartiteGraph are immutable by convention.
        self._stats_cache: dict = {}

    def factor_stats(self):
        """Cached ``(FactorStats(A), FactorStats(B))`` for this product.

        Every ground-truth entry point (vertex/edge/global formulas,
        oracle, streaming, clustering) consumes the factors only through
        these statistics; computing them once per handle turns repeated
        formula calls into pure table lookups.
        """
        if "stats" not in self._stats_cache:
            from repro.kronecker.ground_truth import FactorStats

            self._stats_cache["stats"] = (
                FactorStats.from_graph(self.A),
                FactorStats.from_graph(self.B.graph),
            )
        return self._stats_cache["stats"]

    # ------------------------------------------------------------------
    # Product structure
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return self.implicit.n

    @property
    def m(self) -> int:
        return self.implicit.m

    def materialize(self) -> Graph:
        """Materialize ``C`` as a concrete graph."""
        return self.implicit.materialize()

    def materialize_bipartite(self) -> BipartiteGraph:
        """Materialize ``C`` together with its known bipartition."""
        return BipartiteGraph(self.materialize(), self.product_part())

    def product_part(self) -> np.ndarray:
        """Bipartition mask of ``C``: vertex ``p = γ(i, k)`` lies in the
        part of its ``B``-coordinate ``k`` (§III opening argument)."""
        part_b = self.B.part
        return np.tile(part_b, self.A.n)

    @property
    def U(self) -> np.ndarray:
        """Product vertices whose B-coordinate is in ``U_B``."""
        return np.flatnonzero(~self.product_part()).astype(np.int64)

    @property
    def W(self) -> np.ndarray:
        """Product vertices whose B-coordinate is in ``W_B``."""
        return np.flatnonzero(self.product_part()).astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BipartiteKronecker(assumption={self.assumption.value}, "
            f"n={self.n}, m={self.m})"
        )
