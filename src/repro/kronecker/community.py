"""Bipartite community structure under Kronecker products (§III-C).

Def. 11 fixes the accounting for a bipartite community
``S = R ∪ T`` (``R ⊂ U``, ``T ⊂ W``):

* internal edge count     ``m_in(S)  = ½ 1_Sᵗ A 1_S``
* external edge count     ``m_out(S) = 1_Sᵗ A (1 - 1_S)``
* internal density        ``ρ_in  = m_in / (|R| |T|)``
* external density        ``ρ_out = m_out / (|R||W| + |U||T| - 2|R||T|)``

Def. 12 builds the product community ``S_C = S_A ⊗ S_B`` for
``C = (A + I_A) ⊗ B`` and splits it into parts
``R_C = {R_A ⊗ R_B} ∪ {T_A ⊗ R_B}`` and
``T_C = {R_A ⊗ T_B} ∪ {T_A ⊗ T_B}`` (the product's bipartition follows
the ``B`` coordinate).

Thm. 7 gives the exact product counts, and Cors. 1-2 the density
scaling laws:

* ``m_in(S_C)  = 2 m_in(S_A) m_in(S_B) + |S_A| m_in(S_B)``
* ``m_out(S_C) = m_out(S_A) m_out(S_B) + 2 m_out(S_A) m_in(S_B)
  + |S_A| m_out(S_B) + 2 m_in(S_A) m_out(S_B)``
* Cor. 1: ``ρ_in(S_C)  >= 2 ω ρ_in(S_A) ρ_in(S_B)`` with
  ``ω = min(|R_A|, |T_A|) / |S_A|``
* Cor. 2: ``ρ_out(S_C) <= (1+ξ_A)(1+ξ_B) / (1-ε²) ρ_out(S_A) ρ_out(S_B)``
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.bipartite import BipartiteGraph
from repro.kronecker.assumptions import Assumption, BipartiteKronecker

__all__ = [
    "BipartiteCommunity",
    "community_counts",
    "community_densities",
    "product_community",
    "thm7_product_counts",
    "cor1_internal_density_bound",
    "cor2_external_density_bound",
]


@dataclass(frozen=True)
class BipartiteCommunity:
    """A community ``S = R ∪ T`` inside a bipartite graph.

    ``members`` is the sorted array of vertex ids; the ``R``/``T``
    split is derived from the host graph's parts at construction.
    """

    host: BipartiteGraph
    members: np.ndarray

    def __post_init__(self):
        members = np.unique(np.asarray(self.members, dtype=np.int64))
        if members.size and (members.min() < 0 or members.max() >= self.host.n):
            raise ValueError("community member out of range")
        object.__setattr__(self, "members", members)

    @property
    def R(self) -> np.ndarray:
        """Members in the host's ``U`` part."""
        return self.members[~self.host.part[self.members]]

    @property
    def T(self) -> np.ndarray:
        """Members in the host's ``W`` part."""
        return self.members[self.host.part[self.members]]

    @property
    def size(self) -> int:
        return int(self.members.size)

    def indicator(self) -> np.ndarray:
        """Dense 0/1 indicator ``1_S``."""
        out = np.zeros(self.host.n, dtype=np.int64)
        out[self.members] = 1
        return out


def community_counts(comm: BipartiteCommunity) -> tuple[int, int]:
    """``(m_in, m_out)`` of Def. 11, evaluated on the host adjacency."""
    A = comm.host.graph.adj
    ind = comm.indicator()
    inside = int(ind @ (A @ ind))
    m_in, rem = divmod(inside, 2)
    assert rem == 0, "1ᵗ A 1 over a symmetric loop-free A is even"
    total_incident = int(ind @ (A @ np.ones(A.shape[0], dtype=np.int64)))
    m_out = total_incident - inside
    return m_in, m_out


def community_densities(comm: BipartiteCommunity) -> tuple[float, float]:
    """``(ρ_in, ρ_out)`` of Def. 11.

    ``ρ_in`` is 0-denominator-safe: communities living on one side only
    have no internal pairs; we report 0.0 there (and tests pin this).
    """
    m_in, m_out = community_counts(comm)
    r, t = comm.R.size, comm.T.size
    u = comm.host.U.size
    w = comm.host.W.size
    denom_in = r * t
    rho_in = m_in / denom_in if denom_in else 0.0
    denom_out = r * w + u * t - 2 * r * t
    rho_out = m_out / denom_out if denom_out else 0.0
    return rho_in, rho_out


def product_community(
    bk: BipartiteKronecker,
    comm_a: BipartiteCommunity,
    comm_b: BipartiteCommunity,
) -> BipartiteCommunity:
    """Def. 12: the product community ``S_C = S_A ⊗ S_B``.

    Requires Assumption 1(ii) (the section's standing hypothesis) with
    ``comm_a`` living in ``bk``'s bipartite ``A`` and ``comm_b`` in
    ``B``.  Members are ``{ γ(i, k) : i ∈ S_A, k ∈ S_B }``; the
    ``R_C``/``T_C`` split of Def. 12 then coincides with the product's
    bipartition restricted to ``S_C``, which is what
    :class:`BipartiteCommunity` derives automatically.
    """
    if bk.assumption is not Assumption.SELF_LOOPS_FACTOR:
        raise ValueError("product communities are defined for Assumption 1(ii) products (§III-C)")
    if bk.A_bipartite is None or not np.array_equal(comm_a.host.part, bk.A_bipartite.part):
        raise ValueError("comm_a must live in the product's bipartite factor A")
    if not np.array_equal(comm_b.host.part, bk.B.part):
        raise ValueError("comm_b must live in the product's factor B")
    n_b = bk.B.graph.n
    members = (comm_a.members[:, None] * n_b + comm_b.members[None, :]).ravel()
    return BipartiteCommunity(bk.materialize_bipartite(), members)


def thm7_product_counts(
    comm_a: BipartiteCommunity, comm_b: BipartiteCommunity
) -> tuple[int, int]:
    """Thm. 7: exact ``(m_in(S_C), m_out(S_C))`` from factor counts.

    Computed purely from the factor communities -- no product is
    formed; tests cross-check against :func:`community_counts` on the
    materialized product community.
    """
    mia, moa = community_counts(comm_a)
    mib, mob = community_counts(comm_b)
    s_a = comm_a.size
    m_in = 2 * mia * mib + s_a * mib
    m_out = moa * mob + 2 * moa * mib + s_a * mob + 2 * mia * mob
    return m_in, m_out


def cor1_internal_density_bound(
    comm_a: BipartiteCommunity, comm_b: BipartiteCommunity, tight: bool = False
) -> float:
    """Cor. 1's lower bound on ``ρ_in(S_C)``.

    .. note::
       The paper prints ``ρ_in(S_C) >= 2 ω ρ_in(S_A) ρ_in(S_B)``, but
       with Def. 11's ``ρ_in = m_in / (|R| |T|)`` the derivation gives

           ρ_in(S_C) > 2 θ ρ_in(S_A) ρ_in(S_B) >= ω ρ_in(S_A) ρ_in(S_B)

       with ``θ = |R_A||T_A| / |S_A|²  = ω(1-ω)`` (and ``2ω(1-ω) >= ω``
       for ``ω <= 1/2``).  The printed ``2ω`` constant over-claims by a
       factor of 2 -- our property tests exhibit communities violating
       it while satisfying the corrected bound.  See DESIGN.md
       "Paper errata".

    ``tight=True`` returns the sharper ``2 θ`` version; the default is
    the simple ``ω`` form.  ``ω = min(|R_A|, |T_A|) / |S_A|``;
    degenerate one-sided ``S_A`` gives a vacuous bound of 0.
    """
    rho_a, _ = community_densities(comm_a)
    rho_b, _ = community_densities(comm_b)
    s_a = comm_a.size
    if s_a == 0:
        return 0.0
    if tight:
        theta = comm_a.R.size * comm_a.T.size / (s_a * s_a)
        return 2.0 * theta * rho_a * rho_b
    omega = min(comm_a.R.size, comm_a.T.size) / s_a
    return omega * rho_a * rho_b


def cor2_external_density_bound(
    comm_a: BipartiteCommunity, comm_b: BipartiteCommunity
) -> float:
    """Cor. 2's upper bound on ``ρ_out(S_C)``.

    ``(1 + ξ_A)(1 + ξ_B) / (1 - ε²) * ρ_out(S_A) ρ_out(S_B)`` with
    ``ξ_S = (2 m_in(S) + |S|) / m_out(S)`` and
    ``ε = max(|S_A|/|V_A|, |R_B|/|U_B|, |T_B|/|W_B|)``.
    Returns ``inf`` when a community has no external edges (ξ blows
    up) or fills an entire part (ε = 1) -- the bound is vacuous there.
    """
    mia, moa = community_counts(comm_a)
    mib, mob = community_counts(comm_b)
    if moa == 0 or mob == 0:
        return float("inf")
    _, rho_out_a = community_densities(comm_a)
    _, rho_out_b = community_densities(comm_b)
    xi_a = (2 * mia + comm_a.size) / moa
    xi_b = (2 * mib + comm_b.size) / mob
    eps = max(
        comm_a.size / comm_a.host.n,
        comm_b.R.size / max(comm_b.host.U.size, 1),
        comm_b.T.size / max(comm_b.host.W.size, 1),
    )
    if eps >= 1.0:
        return float("inf")
    return (1 + xi_a) * (1 + xi_b) / (1 - eps * eps) * rho_out_a * rho_out_b
