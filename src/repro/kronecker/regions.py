"""Triangle-free regions: the paper's truss-ground-truth construction.

§III-B (discussion after Thm. 3): "it is fairly easy to create
Kronecker product graphs with no 3-cycles (in certain regions or
globally).  Moreover, it is possible to create Kronecker product graphs
that have a ground truth truss decomposition."

The mechanism is the per-vertex triangle formula ``t_C = 2 t_A ⊗ t_B``
(:mod:`repro.kronecker.triangles`): a product vertex ``γ(i, k)`` is
triangle-free iff *either* factor coordinate is, so triangle-free
regions of ``C`` are unions of coordinate slabs, known at generation
time.  This module exposes that reasoning:

* :func:`triangle_free_vertex_mask` -- which product vertices touch no
  triangle;
* :func:`triangle_free_edge_count` -- how many product edges are
  certified truss-number-0 (via ``Δ_C = Δ_A ⊗ Δ_B``);
* :func:`ground_truth_truss_region` -- the induced triangle-free
  subgraph whose truss decomposition is identically zero *by
  construction* (the "ground truth truss decomposition" the paper
  advertises, in its simplest form).
"""

from __future__ import annotations

import numpy as np

from repro.analytics.triangles import edge_triangles, vertex_triangles
from repro.graphs.graph import Graph
from repro.kronecker.product import kron_graph

__all__ = [
    "triangle_free_vertex_mask",
    "triangle_free_edge_count",
    "ground_truth_truss_region",
]


def _check_loop_free(A: Graph, B: Graph) -> None:
    if A.has_self_loops or B.has_self_loops:
        raise ValueError("triangle region analysis assumes loop-free factors")


def triangle_free_vertex_mask(A: Graph, B: Graph) -> np.ndarray:
    """Boolean mask over ``C = A ⊗ B`` vertices touching no triangle.

    ``t_C(γ(i,k)) = 2 t_A(i) t_B(k)``, so the mask is the complement of
    the outer product of the factors' triangle supports -- factor-sized
    work, product-sized output.
    """
    _check_loop_free(A, B)
    in_tri_a = vertex_triangles(A) > 0
    in_tri_b = vertex_triangles(B) > 0
    return ~np.kron(in_tri_a, in_tri_b)


def triangle_free_edge_count(A: Graph, B: Graph) -> tuple[int, int]:
    """``(triangle_free_edges, total_edges)`` of the product.

    Edges with ``Δ_C = (Δ_A ⊗ Δ_B) = 0`` have truss number 0 --
    certified without materializing or peeling anything.  Counted from
    the factor edge-triangle supports: a product edge is triangle-free
    unless *both* factor edges carry triangles.
    """
    _check_loop_free(A, B)
    ta = edge_triangles(A)
    tb = edge_triangles(B)
    # Directed stored entries with nonzero triangle support, per factor.
    nnz_tri_a = int(np.count_nonzero(ta.data))
    nnz_tri_b = int(np.count_nonzero(tb.data))
    total_entries = A.nnz * B.nnz
    tri_entries = nnz_tri_a * nnz_tri_b
    return (total_entries - tri_entries) // 2, total_entries // 2


def ground_truth_truss_region(A: Graph, B: Graph) -> Graph:
    """The induced subgraph of ``C`` on triangle-free vertices.

    Every edge of this region has truss number 0 in the region itself
    (it is triangle-free by construction), giving a product-scale graph
    with a fully known -- trivial -- truss decomposition, exactly the
    construction §III-B alludes to.  Materializes only the region.
    """
    mask = triangle_free_vertex_mask(A, B)
    C = kron_graph(A, B)
    return C.subgraph(np.flatnonzero(mask))
