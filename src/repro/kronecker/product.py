"""Kronecker product graphs: materialized and implicit.

:func:`kron_graph` materializes ``C = A ⊗ B`` as a
:class:`~repro.graphs.graph.Graph` via scipy's compiled kernel --
appropriate up to a few tens of millions of edges.

:class:`KroneckerProduct` is the *implicit* handle: it stores only the
factors and answers structural queries (degree, adjacency, neighbour
lists) through the index algebra, in O(factor) memory.  This is the
object the oracle and the streaming generator build on; the paper's
massive-scale use case ("validate algorithms on massive graphs"
without materializing, §I) is exactly this split.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import Graph
from repro.kronecker.indexing import ProductIndexMap
from repro.utils.validation import check_positive

__all__ = ["kron_graph", "kron_power", "KroneckerProduct"]


def kron_graph(A: Graph, B: Graph) -> Graph:
    """Materialize the Kronecker product graph ``G_C``, ``C = A ⊗ B``."""
    return Graph(sp.kron(A.adj, B.adj, format="csr"))


def kron_power(A: Graph, k: int) -> Graph:
    """Materialize the k-fold power ``A ⊗ A ⊗ ... ⊗ A`` (k factors).

    The iterated form of Def. 4 used by the Graph500-lineage
    generators; ``k = 1`` returns ``A`` itself.
    """
    k = check_positive(k, "k")
    out = A.adj
    for _ in range(k - 1):
        out = sp.kron(out, A.adj, format="csr")
    return Graph(out)


class KroneckerProduct:
    """Implicit ``C = A ⊗ B``: structural queries without materializing.

    All queries run off the factors' CSR arrays; memory cost is
    ``O(|E_A| + |E_B|)`` regardless of ``|E_C|``.
    """

    __slots__ = ("A", "B", "index")

    def __init__(self, A: Graph, B: Graph):
        self.A = A
        self.B = B
        self.index = ProductIndexMap(A.n, B.n)

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of product vertices ``n_A * n_B``."""
        return self.index.n_product

    @property
    def nnz(self) -> int:
        """Stored nonzeros of ``C``: ``nnz(A) * nnz(B)``."""
        return self.A.nnz * self.B.nnz

    @property
    def num_self_loops(self) -> int:
        """Self loops of ``C``: product of the factors' loop counts."""
        return self.A.num_self_loops * self.B.num_self_loops

    @property
    def m(self) -> int:
        """Undirected edge count of ``C`` (loops counted once)."""
        loops = self.num_self_loops
        return (self.nnz - loops) // 2 + loops

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    def degree(self, p) -> np.ndarray:
        """Degree of product vertex/vertices ``p``: ``d_i * d_k``."""
        i, k = self.index.split(p)
        return self.A.degrees()[i] * self.B.degrees()[k]

    def degrees(self) -> np.ndarray:
        """Full product degree vector ``d_A ⊗ d_B`` (dense, length n)."""
        return np.kron(self.A.degrees(), self.B.degrees())

    def has_edge(self, p: int, q: int) -> bool:
        """Edge test via the entry identity ``C_pq = A_ij * B_kl``."""
        i, k = self.index.split(p)
        j, ell = self.index.split(q)
        return self.A.has_edge(int(i), int(j)) and self.B.has_edge(int(k), int(ell))

    def neighbors(self, p: int) -> np.ndarray:
        """Sorted neighbour list of product vertex ``p``.

        ``N_C(γ(i,k)) = { γ(j, l) : j ∈ N_A(i), l ∈ N_B(k) }`` -- an
        outer sum of the two factor neighbour lists.
        """
        i, k = self.index.split(p)
        na = self.A.neighbors(int(i))
        nb = self.B.neighbors(int(k))
        return (na[:, None] * self.B.n + nb[None, :]).ravel()

    def materialize(self) -> Graph:
        """Materialize to a concrete :class:`Graph` (scipy kron)."""
        return kron_graph(self.A, self.B)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KroneckerProduct(n={self.n}, m={self.m})"
