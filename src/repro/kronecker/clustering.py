"""Bipartite edge clustering coefficients on products (§III-B3).

Def. 10: ``Γ(i, j) = ◇_ij / ((d_i - 1)(d_j - 1))`` for an edge whose
endpoints both have degree >= 2.

Thm. 6 (Assumption 1(i)): for a product edge ``(p, q)`` built from
factor edges ``(i, j)`` and ``(k, l)`` with all four factor degrees
>= 2::

    Γ_C(p, q) >= ψ(i, j, k, l) Γ_A(i, j) Γ_B(k, l)

    ψ = (d_i-1)(d_k-1)(d_j-1)(d_l-1) / ((d_i d_k - 1)(d_j d_l - 1))
    ψ ∈ [1/9, 1)

-- the paper's "edge clustering coefficients are controllable" scaling
law.  ``thm6_lower_bound`` evaluates both sides for every product edge
so the bench can report the bound's empirical tightness (the paper
notes ``◇_pq`` is typically much larger than ``◇_ij ◇_kl``).
"""

from __future__ import annotations

import numpy as np

from repro.kronecker import kernels
from repro.kronecker.assumptions import Assumption, BipartiteKronecker
from repro.kronecker.ground_truth import edge_squares_product

__all__ = [
    "edge_clustering_ground_truth",
    "psi_factor",
    "psi_factor_self_loops",
    "thm6_lower_bound",
    "thm6_lower_bound_self_loops",
]


def edge_clustering_ground_truth(bk: BipartiteKronecker):
    """Ground-truth ``Γ_C`` for every product edge with valid degrees.

    Returns ``(p, q, gamma)`` parallel arrays over the directed stored
    entries (each undirected edge appears twice, (p,q) and (q,p), like
    the adjacency itself); entries where an endpoint has degree < 2 are
    dropped (Def. 10's domain).
    """
    diamond = edge_squares_product(bk).tocoo()
    d_c = bk.implicit.degrees()
    denom = (d_c[diamond.row] - 1) * (d_c[diamond.col] - 1)
    keep = denom > 0
    return (
        diamond.row[keep].astype(np.int64),
        diamond.col[keep].astype(np.int64),
        diamond.data[keep] / denom[keep],
    )


def psi_factor(d_i, d_j, d_k, d_l):
    """The Thm. 6 correction ``ψ(i, j, k, l)`` (vectorised).

    All degrees must be >= 2; the paper proves ``ψ ∈ [1/9, 1)``.
    """
    d_i, d_j, d_k, d_l = (np.asarray(x, dtype=np.float64) for x in (d_i, d_j, d_k, d_l))
    if np.any(d_i < 2) or np.any(d_j < 2) or np.any(d_k < 2) or np.any(d_l < 2):
        raise ValueError("psi requires all four factor degrees >= 2 (Thm. 6)")
    num = (d_i - 1) * (d_k - 1) * (d_j - 1) * (d_l - 1)
    den = (d_i * d_k - 1) * (d_j * d_l - 1)
    return num / den


def psi_factor_self_loops(d_i, d_j, d_k, d_l):
    """Our derived ψ'' for Assumption 1(ii) cross edges (vectorised).

    The paper states Thm. 6 only for case (i); the analogous bound for
    ``C = (A + I_A) ⊗ B`` on *cross* edges (``(i,j) ∈ E_A``) is

        Γ_C(p, q) >= ψ'' Γ_A(i, j) Γ_B(k, l),
        ψ'' = (d_i−1)(d_j−1)(d_k−1)(d_l−1)
              / (((d_i+1)d_k − 1)((d_j+1)d_l − 1))

    since ``d_p = (d_i+1)d_k`` under the loop augmentation, and the
    derived edge formula's remainder beyond ``◇_ij ◇_kl`` is strictly
    positive for all degrees >= 2 (see docs/derivations.md §2c).
    ``ψ'' ∈ [1/25, 1)``; loop-block edges (``i = j``) have no factor-A
    edge and are outside the bound's scope.  All degrees must be >= 2.
    """
    d_i, d_j, d_k, d_l = (np.asarray(x, dtype=np.float64) for x in (d_i, d_j, d_k, d_l))
    if np.any(d_i < 2) or np.any(d_j < 2) or np.any(d_k < 2) or np.any(d_l < 2):
        raise ValueError("psi'' requires all four factor degrees >= 2")
    num = (d_i - 1) * (d_j - 1) * (d_k - 1) * (d_l - 1)
    den = ((d_i + 1) * d_k - 1) * ((d_j + 1) * d_l - 1)
    return num / den


def thm6_lower_bound_self_loops(bk: BipartiteKronecker):
    """Evaluate the derived 1(ii) scaling law on every cross edge.

    Same output contract as :func:`thm6_lower_bound`; applicable edges
    are products of a factor-``A`` edge and a factor-``B`` edge with
    all four factor degrees >= 2 (loop-block edges are skipped -- no
    ``Γ_A`` exists for them).
    """
    if bk.assumption is not Assumption.SELF_LOOPS_FACTOR:
        raise ValueError("use thm6_lower_bound for Assumption 1(i) products")
    from repro.analytics.fourcycles import edge_squares_matrix

    d_a = bk.A.degrees().astype(np.int64)
    d_b = bk.B.graph.degrees().astype(np.int64)
    dia_a = edge_squares_matrix(bk.A).tocoo()
    dia_b = edge_squares_matrix(bk.B.graph).tocoo()
    n_b = bk.B.graph.n

    def _valid(coo, d):
        denom = (d[coo.row] - 1) * (d[coo.col] - 1)
        ok = denom > 0
        return coo.row[ok], coo.col[ok], coo.data[ok] / denom[ok]

    ai, aj, gamma_a = _valid(dia_a, d_a)
    bk_row, bl, gamma_b = _valid(dia_b, d_b)
    if ai.size == 0 or bk_row.size == 0:
        empty = np.empty(0)
        return {"p": empty, "q": empty, "gamma_c": empty, "bound": empty, "ratio": empty}
    na, nb = ai.size, bk_row.size
    ii = np.repeat(ai, nb)
    jj = np.repeat(aj, nb)
    kk = np.tile(bk_row, na)
    ll = np.tile(bl, na)
    ga = np.repeat(gamma_a, nb)
    gb = np.tile(gamma_b, na)
    psi = psi_factor_self_loops(d_a[ii], d_a[jj], d_b[kk], d_b[ll])
    bound = psi * ga * gb
    p = ii * n_b + kk
    q = jj * n_b + ll
    # Ground-truth ◇_C at those edges, point-wise -- no product-sized
    # matrix is materialized or fancy-indexed.
    stats_a, stats_b = bk.factor_stats()
    vals, _ = kernels.edge_squares_batch(stats_a, stats_b, bk.assumption, ii, jj, kk, ll)
    d_c = bk.implicit.degrees()
    gamma_c = vals / ((d_c[p] - 1) * (d_c[q] - 1))
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(gamma_c > 0, bound / gamma_c, np.inf)
    return {"p": p, "q": q, "gamma_c": gamma_c, "bound": bound, "ratio": ratio}


def thm6_lower_bound(bk: BipartiteKronecker):
    """Evaluate Thm. 6 on every applicable product edge.

    Applicable edges are those built from a factor-``A`` edge and a
    factor-``B`` edge with all four factor degrees >= 2 (under
    Assumption 1(ii) the loop-block edges of ``(A+I) ⊗ B`` have no
    factor-``A`` edge and are skipped; Thm. 6 is stated for 1(i)).

    Returns a dict of parallel arrays: product edge endpoints ``p, q``,
    ground-truth ``gamma_c``, the bound ``psi * gamma_a * gamma_b``,
    and the tightness ratio ``bound / gamma_c`` (<= 1 when the theorem
    holds; tests assert it always is).
    """
    a_stats_needed = bk.A
    d_a = a_stats_needed.degrees().astype(np.int64)
    d_b = bk.B.graph.degrees().astype(np.int64)
    from repro.analytics.fourcycles import edge_squares_matrix

    dia_a = edge_squares_matrix(bk.A).tocoo()
    dia_b = edge_squares_matrix(bk.B.graph).tocoo()
    n_b = bk.B.graph.n

    # Factor-edge clustering coefficients (directed entries).
    def _gamma(coo, d):
        denom = (d[coo.row] - 1) * (d[coo.col] - 1)
        ok = denom > 0
        return coo.row[ok], coo.col[ok], coo.data[ok] / denom[ok], d

    ai, aj, gamma_a, _ = _gamma(dia_a, d_a)
    bk_row, bl, gamma_b, _ = _gamma(dia_b, d_b)
    if ai.size == 0 or bk_row.size == 0:
        empty = np.empty(0)
        return {"p": empty, "q": empty, "gamma_c": empty, "bound": empty, "ratio": empty}

    # All cross pairs of valid factor edges -> product edges.
    na, nb = ai.size, bk_row.size
    ii = np.repeat(ai, nb)
    jj = np.repeat(aj, nb)
    kk = np.tile(bk_row, na)
    ll = np.tile(bl, na)
    ga = np.repeat(gamma_a, nb)
    gb = np.tile(gamma_b, na)
    psi = psi_factor(d_a[ii], d_a[jj], d_b[kk], d_b[ll])
    bound = psi * ga * gb
    p = ii * n_b + kk
    q = jj * n_b + ll

    # Ground-truth Γ_C at those edges from the point-wise formula -- no
    # product-sized matrix is materialized or fancy-indexed.
    stats_a, stats_b = bk.factor_stats()
    vals, _ = kernels.edge_squares_batch(stats_a, stats_b, bk.assumption, ii, jj, kk, ll)
    d_c = bk.implicit.degrees()
    gamma_c = vals / ((d_c[p] - 1) * (d_c[q] - 1))
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(gamma_c > 0, bound / gamma_c, np.inf)
    return {"p": p, "q": q, "gamma_c": gamma_c, "bound": bound, "ratio": ratio}
