"""What the generator can (and cannot) give you for wing validation.

Rem. 1's negative result: non-trivial products always contain 4-cycles,
so one cannot engineer products whose k-wing decomposition is trivially
known the way triangle-free regions make trusses knowable.  The
*positive* residue is still useful:

* the exact **initial butterfly support** of every edge is free
  (Thm. 5 / derived 1(ii) for 2-factor products; the multiplicative
  Def. 9 form ``Π W3 − Π d_row − Π d_col + 1`` for n-factor chains),
  and the wing number never exceeds it;
* a k-wing can only exist if at least one edge has support >= k, so
  ``max support`` upper-bounds the product's maximum wing number;
* edges with support 0 have wing number exactly 0 -- the generator can
  certify *those* without any peeling.

These bounds let a wing implementation be sanity-checked at scale
(upper bounds violated => bug) even though the exact decomposition
still requires the peel (:mod:`repro.analytics.peel` on referee-sized
products).

Every function accepts either a 2-factor
:class:`~repro.kronecker.assumptions.BipartiteKronecker` (materialized
CSR answers, the original API) or an n-factor
:class:`~repro.kronecker.multifactor.KroneckerChain`, where bounds
stream block-by-block from factor-sized tables and point queries run
through per-factor hash probes -- nothing product-sized is allocated.
"""

from __future__ import annotations

from typing import Iterator, Union

import numpy as np
import scipy.sparse as sp

from repro.kronecker.assumptions import BipartiteKronecker
from repro.kronecker.backends import KernelBackend, get_backend
from repro.kronecker.ground_truth import edge_squares_product
from repro.kronecker.multifactor import KroneckerChain

__all__ = [
    "wing_upper_bounds",
    "certified_zero_wing_edges",
    "max_wing_upper_bound",
    "chain_wings_at_edges",
]

WingSource = Union[BipartiteKronecker, KroneckerChain]


def _reject_stream_kwargs(lo, hi, block_entries) -> None:
    if lo is not None or hi is not None or block_entries is not None:
        raise TypeError(
            "row-range streaming (lo/hi/block_entries) applies to "
            "KroneckerChain sources only"
        )


def wing_upper_bounds(
    source: WingSource,
    lo: int | None = None,
    hi: int | None = None,
    block_entries: int | None = None,
) -> sp.csr_array | Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Per-edge upper bounds on wing numbers: the exact ◇ supports.

    For a :class:`BipartiteKronecker` this returns a CSR whose pattern
    equals the product adjacency; the value at each edge is its exact
    initial butterfly support, which dominates its wing number (peeling
    only removes support).

    For a :class:`KroneckerChain` it returns an iterator of
    ``(rows, cols, bounds)`` int64 blocks streamed over product rows
    ``[lo, hi)`` (default: the full row range) -- the same shard blocks
    :meth:`KroneckerChain.stream_rows` emits, since the chain's
    per-entry 4-cycle count *is* the Def. 9 butterfly support.
    """
    if isinstance(source, KroneckerChain):
        return source.stream_rows(
            0 if lo is None else lo,
            source.n if hi is None else hi,
            attach_ground_truth=True,
            block_entries=block_entries,
        )
    _reject_stream_kwargs(lo, hi, block_entries)
    return edge_squares_product(source)


def certified_zero_wing_edges(
    source: WingSource,
    lo: int | None = None,
    hi: int | None = None,
    block_entries: int | None = None,
) -> np.ndarray:
    """Directed entries ``(p, q)`` whose wing number is certified 0.

    Exactly the edges with ◇ = 0: no butterfly ever contains them, so
    no k-wing (k >= 1) can either.  Returned as an ``(m, 2)`` int64
    array of directed stored entries; empty products (a factor without
    edges) certify nothing and return shape ``(0, 2)``.

    Chain sources stream rows ``[lo, hi)`` block-by-block and collect
    only the zero-support entries, so memory is bounded by the block
    size plus the certified set itself.
    """
    if isinstance(source, KroneckerChain):
        lo = 0 if lo is None else lo
        hi = source.n if hi is None else hi
        found = [np.zeros((0, 2), dtype=np.int64)]
        for rows, cols, bounds in source.stream_rows(
            lo, hi, attach_ground_truth=True, block_entries=block_entries
        ):
            zero = bounds == 0
            if zero.any():
                found.append(np.column_stack((rows[zero], cols[zero])))
        return np.concatenate(found, axis=0)
    _reject_stream_kwargs(lo, hi, block_entries)
    dia = edge_squares_product(source).tocoo()
    zero = dia.data == 0
    return np.column_stack((dia.row[zero], dia.col[zero])).reshape(-1, 2).astype(np.int64)


def max_wing_upper_bound(source: WingSource) -> int:
    """Upper bound on the product's maximum wing number: max ◇
    (0 for edgeless products).  Chain sources stream the reduction."""
    if isinstance(source, KroneckerChain):
        best = 0
        for _, _, bounds in source.stream_rows(0, source.n, attach_ground_truth=True):
            if bounds.size:
                best = max(best, int(bounds.max()))
        return best
    dia = edge_squares_product(source)
    return int(dia.data.max()) if dia.nnz else 0


# ---------------------------------------------------------------------------
# Batched chain point queries
# ---------------------------------------------------------------------------


def _chain_probe_tables(
    chain: KroneckerChain, be: KernelBackend
) -> list[tuple[np.ndarray, np.ndarray, int]]:
    """Per-factor ``W3`` hash tables (``key = row·n + col``), memoized
    on the chain per backend name (layouts differ between backends)."""
    cache = getattr(chain, "_wing_probe_tables", None)
    if cache is None:
        cache = {}
        chain._wing_probe_tables = cache  # type: ignore[attr-defined]
    tables = cache.get(be.name)
    if tables is None:
        tables = []
        for f in chain.factors:
            rows = np.repeat(np.arange(f.n, dtype=np.int64), np.diff(f.indptr))
            keys = rows * f.n + f.indices  # ascending: CSR with sorted indices
            tables.append(be.build_edge_table(keys, f.w3))
        cache[be.name] = tables
    return tables


def chain_wings_at_edges(
    chain: KroneckerChain,
    ps: np.ndarray,
    qs: np.ndarray,
    on_invalid: str = "raise",
    backend: str | KernelBackend | None = None,
) -> np.ndarray:
    """Wing upper bounds at arbitrary product entry batches ``(p, q)``.

    Evaluates the multiplicative Def. 9 support
    ``Π_t W3_t(i_t, j_t) − Π_t d_t(i_t) − Π_t d_t(j_t) + 1`` through
    the chain's mixed-radix digits with one hash probe per factor --
    bit-identical to the streamed :func:`wing_upper_bounds` blocks and,
    on 2-factor ``[M, B]`` chains, to the fused Thm. 5 kernels.

    ``on_invalid`` matches the oracle contract: ``"raise"`` names the
    first non-edge pair, ``"mask"`` reports ``-1`` there.
    """
    if on_invalid not in ("raise", "mask"):
        raise ValueError(f"on_invalid must be 'raise' or 'mask', got {on_invalid!r}")
    be = get_backend(backend)
    ps = np.atleast_1d(np.asarray(ps, dtype=np.int64))
    qs = np.atleast_1d(np.asarray(qs, dtype=np.int64))
    if ps.shape != qs.shape:
        raise ValueError(f"ps and qs must align: {ps.shape} vs {qs.shape}")
    for name, arr in (("p", ps), ("q", qs)):
        if arr.size and (int(arr.min()) < 0 or int(arr.max()) >= chain.n):
            raise IndexError(
                f"{name} indices out of range for chain product of size {chain.n}"
            )
    tables = _chain_probe_tables(chain, be)
    valid = np.ones(ps.shape, dtype=bool)
    w3 = np.ones(ps.shape, dtype=np.int64)
    drow = np.ones(ps.shape, dtype=np.int64)
    dcol = np.ones(ps.shape, dtype=np.int64)
    rem_p, rem_q = ps, qs
    for t in range(len(chain.factors) - 1, -1, -1):
        f = chain.factors[t]
        rem_p, i_t = np.divmod(rem_p, f.n)
        rem_q, j_t = np.divmod(rem_q, f.n)
        table_keys, table_vals, shift = tables[t]
        found, w3_t = be.probe_edge_table(table_keys, table_vals, shift, i_t * f.n + j_t)
        valid &= found
        w3 *= w3_t
        drow *= f.d[i_t]
        dcol *= f.d[j_t]
    vals = w3
    vals -= drow
    vals -= dcol
    vals += 1
    vals *= valid  # zero the invalid slots before the sentinel fuse
    if on_invalid == "raise":
        if not valid.all():
            bad = int(np.flatnonzero(~valid)[0])
            raise ValueError(
                f"({int(ps[bad])}, {int(qs[bad])}) is not an edge of the chain product"
            )
        return vals
    return be.wing_bounds_fuse(vals, valid)
