"""What the generator can (and cannot) give you for wing validation.

Rem. 1's negative result: non-trivial products always contain 4-cycles,
so one cannot engineer products whose k-wing decomposition is trivially
known the way triangle-free regions make trusses knowable.  The
*positive* residue is still useful:

* the exact **initial butterfly support** of every edge is free
  (Thm. 5 / derived 1(ii)), and the wing number never exceeds it;
* a k-wing can only exist if at least one edge has support >= k, so
  ``max support`` upper-bounds the product's maximum wing number;
* edges with support 0 have wing number exactly 0 -- the generator can
  certify *those* without any peeling.

These bounds let a wing implementation be sanity-checked at scale
(upper bounds violated => bug) even though the exact decomposition
still requires the peel.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.kronecker.assumptions import BipartiteKronecker
from repro.kronecker.ground_truth import edge_squares_product

__all__ = ["wing_upper_bounds", "certified_zero_wing_edges", "max_wing_upper_bound"]


def wing_upper_bounds(bk: BipartiteKronecker) -> sp.csr_array:
    """Per-edge upper bounds on wing numbers: the exact ◇ supports.

    Pattern equals the product adjacency; value at each edge is its
    exact initial butterfly support, which dominates its wing number
    (peeling only removes support).
    """
    return edge_squares_product(bk)


def certified_zero_wing_edges(bk: BipartiteKronecker) -> np.ndarray:
    """Directed entries ``(p, q)`` whose wing number is certified 0.

    Exactly the edges with ◇ = 0: no butterfly ever contains them, so
    no k-wing (k >= 1) can either.  Returned as an ``(m, 2)`` array of
    directed stored entries.
    """
    dia = edge_squares_product(bk).tocoo()
    zero = dia.data == 0
    return np.column_stack((dia.row[zero], dia.col[zero])).astype(np.int64)


def max_wing_upper_bound(bk: BipartiteKronecker) -> int:
    """Upper bound on the product's maximum wing number: max ◇."""
    dia = edge_squares_product(bk)
    return int(dia.data.max()) if dia.nnz else 0
