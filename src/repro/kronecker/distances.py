"""Ground-truth hop distances, eccentricities and diameter (§I claim).

The paper states that "formulas for ground truth of many graph
properties (including degree, diameter, and eccentricity) carry over
directly from the general case presented in previous work [2], [3]".
This module supplies those formulas for the two bipartite assumptions,
derived from the walk factorisation in the Thm. 1/2 proofs:

    W_C^{(h)}(p, q) = W_M^{(h)}(i, j) * W_B^{(h)}(k, l)

so ``hops_C(p, q)`` is the least ``h`` at which both factor walk counts
are simultaneously positive.  Two facts close the argument:

* In a connected graph with >= 2 vertices, a positive ``h``-walk
  implies a positive ``(h+2)``-walk (traverse any incident edge back
  and forth), so each factor's feasible set is "everything of one
  parity above a threshold" -- or everything above a threshold, when
  the factor is non-bipartite (odd cycle) or lazy (self loops).
* For bipartite ``B``, the parity of every ``k -> l`` walk equals the
  parity of ``hops_B(k, l)``.

This yields closed forms per assumption (``h_B = hops_B(k, l)``):

**Assumption 1(ii)** (``M = A + I_A``, lazy walks, no parity
constraint on the left): ``hops_C = max(hops_A(i, j), h_B)`` --
*except* that a length-``h`` lazy walk needs ``h >= hops_A``, and any
``h >= hops_A`` works, so the max is exact.

**Assumption 1(i)** (``M = A`` non-bipartite): walks in ``A`` of
parity ``π`` exist for every length ``>= hops_A^π(i, j)``, the
*parity-constrained distance* (computed by BFS on the bipartite
double cover of ``A``).  The product constraint forces parity
``π = h_B mod 2``, giving ``hops_C = max(hops_A^{h_B mod 2}(i, j), h_B)``.

From ``hops_C``, eccentricities and the diameter follow by maximising
over factor pairs -- all computed from factor-sized BFS tables (plus a
factor-sized double cover), never touching the product.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_levels
from repro.kronecker.assumptions import Assumption, BipartiteKronecker

__all__ = [
    "parity_distances",
    "all_pairs_hops",
    "product_hop_distance",
    "product_eccentricities",
    "product_diameter",
]


def all_pairs_hops(graph: Graph) -> np.ndarray:
    """Dense all-pairs hop distance matrix (``-1`` for unreachable).

    One vectorised BFS per source; O(n(n+m)) total, fine at factor
    scale (the whole point is that only factors are ever traversed).
    """
    n = graph.n
    out = np.full((n, n), -1, dtype=np.int64)
    for v in range(n):
        out[v] = bfs_levels(graph, v)
    return out


def parity_distances(graph: Graph) -> tuple[np.ndarray, np.ndarray]:
    """Parity-constrained all-pairs distances via the bipartite double
    cover.

    Returns ``(even, odd)`` matrices where ``even[i, j]`` is the length
    of the shortest **even**-length walk from ``i`` to ``j`` (likewise
    ``odd``), or ``-1`` when no walk of that parity exists.  The double
    cover has vertices ``(v, parity)``; an edge ``(u, v)`` connects
    ``(u, 0)-(v, 1)`` and ``(u, 1)-(v, 0)``, so BFS distance from
    ``(i, 0)`` to ``(j, π)`` is exactly the shortest walk of parity
    ``π`` (walks may repeat edges, which BFS on the cover allows by
    construction).
    """
    n = graph.n
    adj = graph.adj
    if graph.has_self_loops:
        raise ValueError("parity distances assume a loop-free graph (a loop collapses parity)")
    # Double cover adjacency: [[0, A], [A, 0]] with layer 0 = even steps.
    zero = sp.csr_array((n, n), dtype=np.int64)
    cover = Graph(sp.vstack([sp.hstack([zero, adj]), sp.hstack([adj, zero])]))
    even = np.full((n, n), -1, dtype=np.int64)
    odd = np.full((n, n), -1, dtype=np.int64)
    for v in range(n):
        levels = bfs_levels(cover, v)  # start in the even layer
        even[v] = levels[:n]
        odd[v] = levels[n:]
    return even, odd


def _pairwise_product_hops(bk: BipartiteKronecker):
    """Return the (n_A, n_A, n_B, n_B)-indexable hop machinery.

    Internal helper producing the factor tables needed by all public
    functions; everything is factor-sized.
    """
    hops_b = all_pairs_hops(bk.B.graph)
    if bk.assumption is Assumption.SELF_LOOPS_FACTOR:
        hops_a = all_pairs_hops(bk.A)
        return ("lazy", hops_a, None, hops_b)
    even_a, odd_a = parity_distances(bk.A)
    return ("parity", even_a, odd_a, hops_b)


def product_hop_distance(bk: BipartiteKronecker, p: int, q: int) -> int:
    """Exact ``hops_C(p, q)`` from factor tables (``-1`` unreachable)."""
    table = _pairwise_product_hops(bk)
    return _hops_from_tables(bk, table, p, q)


def _hops_from_tables(bk, table, p: int, q: int) -> int:
    kind, t1, t2, hops_b = table
    n_b = bk.B.graph.n
    i, k = divmod(p, n_b)
    j, ell = divmod(q, n_b)
    h_b = hops_b[k, ell]
    if h_b < 0:
        return -1
    if kind == "lazy":
        h_a = t1[i, j]
        if h_a < 0:
            return -1
        if p == q:
            return 0
        h = max(int(h_a), int(h_b))
        # B-side walks need h ≡ h_b (mod 2) and h >= h_b; bump by one if
        # the lazy left side forced an off-parity max.
        if (h - h_b) % 2 == 1:
            h += 1
        return h
    # Assumption 1(i): parity-constrained left side.
    parity = int(h_b % 2)
    h_a = (t1 if parity == 0 else t2)[i, j]
    if h_a < 0:
        return -1
    if p == q:
        return 0
    return max(int(h_a), int(h_b))


def product_eccentricities(bk: BipartiteKronecker) -> np.ndarray:
    """Exact eccentricity of every product vertex, in closed form.

    The per-pair max decouples (docs/derivations.md §4b).  Because a
    connected ``B`` on >= 2 vertices has targets of *both* parities
    from every ``k`` (``l = k`` gives even 0, any neighbour gives odd
    1), maximising ``hops_C((i,k), ·)`` over all ``(j, l)`` collapses
    to factor eccentricity vectors:

    * **Assumption 1(ii)** (lazy left walks)::

          ecc_C(γ(i,k)) = max( ecc_A(i) + 1, ecc_B(k) )

      -- the ``+1`` is the parity bump: a ``(j, l=k)`` pair with
      ``hops_A(i,j) = ecc_A(i)`` and the wrong parity rounds up, and
      such a pair always exists.

    * **Assumption 1(i)** (parity-constrained left walks)::

          ecc_C(γ(i,k)) = max( ecc_A⁰(i), ecc_A¹(i), ecc_B(k) )

      where ``ecc_A^π(i)`` is the largest parity-``π``-constrained
      distance from ``i`` (double-cover BFS).

    Total cost after the factor distance tables: O(n_A + n_B) -- the
    earlier per-pair evaluation (O(n_A² n_B²)) survives only inside
    :func:`product_hop_distance`.  Raises if the product is
    disconnected (eccentricity undefined).
    """
    kind, t1, t2, hops_b = _pairwise_product_hops(bk)
    n_a, n_b = bk.A.n, bk.B.graph.n
    if n_a * n_b == 1:
        return np.zeros(1, dtype=np.int64)
    if np.any(hops_b < 0) or np.any(t1 < 0) or (t2 is not None and np.any(t2 < 0)):
        raise ValueError("product is disconnected; eccentricity undefined")
    if n_b < 2 or bk.B.graph.m == 0:
        raise ValueError("product is disconnected; eccentricity undefined")
    ecc_b = hops_b.max(axis=1)  # (n_b,)
    if kind == "lazy":
        ecc_rows = t1.max(axis=1) + 1  # (n_a,): ecc_A(i) + parity bump
    else:
        ecc_rows = np.maximum(t1.max(axis=1), t2.max(axis=1))  # (n_a,)
    return np.maximum(ecc_rows[:, None], ecc_b[None, :]).ravel()


def product_diameter(bk: BipartiteKronecker) -> int:
    """Exact diameter of the product from factor tables."""
    return int(product_eccentricities(bk).max())
