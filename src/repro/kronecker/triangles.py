"""Ground-truth triangle counts for Kronecker products (prior work [3], [12]).

The bipartite theory rests on the general-product triangle formulas of
Sanders et al. [12] / Steil et al. [3]: for loop-free undirected
factors,

    diag(C³) = diag(A³) ⊗ diag(B³)      =>    t_C = ½ (2t_A) ⊗ (2t_B) = 2 t_A ⊗ t_B

and per edge ``Δ_C = (C² ∘ C) = (A² ∘ A) ⊗ (B² ∘ B) = Δ_A ⊗ Δ_B``.

Two uses here:

* the general formulas themselves (this library also generates
  non-bipartite products via :func:`repro.kronecker.product.kron_graph`);
* the bipartite sanity theorem: any product with a bipartite factor has
  ``t_C = 0`` identically -- which the formulas reproduce because the
  bipartite factor's ``diag(B³)`` vanishes.  Tests pin both.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.analytics.triangles import edge_triangles, vertex_triangles
from repro.graphs.graph import Graph

__all__ = [
    "product_vertex_triangles",
    "product_edge_triangles",
    "product_global_triangles",
]


def _require_loop_free(A: Graph, B: Graph) -> None:
    if A.has_self_loops or B.has_self_loops:
        raise ValueError(
            "triangle product formulas assume loop-free factors; with self "
            "loops the expansion gains cross terms (see [3], [12])"
        )


def product_vertex_triangles(A: Graph, B: Graph) -> np.ndarray:
    """Triangles at every vertex of ``C = A ⊗ B``: ``t_C = 2 t_A ⊗ t_B``.

    Derivation: ``diag(C³) = diag(A³) ⊗ diag(B³)`` (mixed product +
    diag-Kronecker distributivity), and ``diag(X³) = 2 t_X`` for
    loop-free ``X``.
    """
    _require_loop_free(A, B)
    return 2 * np.kron(vertex_triangles(A), vertex_triangles(B))


def product_edge_triangles(A: Graph, B: Graph) -> sp.csr_array:
    """Triangles at every edge of ``C``: ``Δ_C = Δ_A ⊗ Δ_B``."""
    _require_loop_free(A, B)
    return sp.csr_array(sp.kron(edge_triangles(A), edge_triangles(B), format="csr"))


def product_global_triangles(A: Graph, B: Graph) -> int:
    """Total triangles of ``C``: ``Σ t_C / 3 = 2 (Σt_A)(Σt_B) / 3``."""
    total = 2 * int(vertex_triangles(A).sum()) * int(vertex_triangles(B).sum())
    count, rem = divmod(total, 3)
    assert rem == 0, "vertex triangle sums are multiples of 3"
    return count
