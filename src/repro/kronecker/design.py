"""Factor design: search for factors hitting target product statistics.

The paper's positioning (§I, §V): non-stochastic Kronecker generators
are "appropriate for validation of algorithms and generation of graphs
with certain properties at different scales", and "researchers can use
these generators and formulas to validate their novel algorithms".
That workflow needs an inverse tool: *given* a target product scale and
square budget, find factors that land near it.

Because every candidate product is scored with the **sublinear**
formulas (never materialized), the search evaluates thousands of factor
pairs per second.  The search space is a library of parameterised
factor families (classic graphs + seeded scale-free factors); the cost
of a candidate is a weighted relative error against the requested
targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.generators.classic import (
    complete_bipartite,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.generators.scale_free import scale_free_bipartite_factor
from repro.graphs.bipartite import BipartiteGraph
from repro.kronecker.assumptions import Assumption, BipartiteKronecker
from repro.kronecker.ground_truth import FactorStats, _vertex_terms

__all__ = ["DesignTarget", "DesignCandidate", "design_product", "default_factor_library"]


@dataclass(frozen=True)
class DesignTarget:
    """What the designed product should look like.

    Any field may be ``None`` (unconstrained).  Relative errors of the
    constrained fields are combined with the given weights.
    """

    n_vertices: Optional[int] = None
    n_edges: Optional[int] = None
    global_squares: Optional[int] = None
    weight_vertices: float = 1.0
    weight_edges: float = 1.0
    weight_squares: float = 1.0


@dataclass(frozen=True)
class DesignCandidate:
    """A scored factor pair."""

    label_a: str
    label_b: str
    bk: BipartiteKronecker
    n_vertices: int
    n_edges: int
    global_squares: int
    score: float

    def format(self) -> str:
        return (
            f"{self.label_a} (x) {self.label_b}: n={self.n_vertices:,} "
            f"m={self.n_edges:,} squares={self.global_squares:,} "
            f"(score {self.score:.4f})"
        )


def default_factor_library(max_size: int = 24, seed: int = 0) -> List[tuple[str, BipartiteGraph]]:
    """A modest library of connected bipartite factors.

    Classic families (paths, even cycles-as-grids, stars, bicliques,
    grids) plus a few seeded scale-free factors; all loop-free,
    connected and bipartite, i.e. valid Assumption-1(ii) inputs.
    """
    library: List[tuple[str, BipartiteGraph]] = []
    for n in range(2, max_size + 1, 2):
        library.append((f"path:{n}", BipartiteGraph(path_graph(n))))
    for k in range(2, max_size // 2):
        library.append((f"star:{k}", BipartiteGraph(star_graph(k))))
    for m in range(2, 6):
        for n in range(m, 7):
            if m * n <= max_size * 2:
                library.append((f"biclique:{m}x{n}", complete_bipartite(m, n)))
    for r in range(2, 5):
        for c in range(r, 6):
            if r * c <= max_size:
                library.append((f"grid:{r}x{c}", BipartiteGraph(grid_graph(r, c))))
    rng = np.random.default_rng(seed)
    for i in range(4):
        nu = int(rng.integers(4, max_size // 2))
        nw = int(rng.integers(4, max_size // 2))
        library.append(
            (f"sf:{nu}x{nw}#{i}", scale_free_bipartite_factor(nu, nw, 2, seed=int(rng.integers(1 << 30))))
        )
    return library


def _score(bk: BipartiteKronecker, target: DesignTarget) -> tuple[int, int, int, float]:
    """Sublinear evaluation of one candidate."""
    n = bk.n
    m = bk.m
    stats_a = FactorStats.from_graph(bk.A)
    stats_b = FactorStats.from_graph(bk.B.graph)
    acc = 0
    for sign, left, right in _vertex_terms(stats_a, stats_b, bk.assumption):
        acc += sign * int(left.sum()) * int(right.sum())
    squares = acc // 2 // 4
    score = 0.0
    if target.n_vertices:
        score += target.weight_vertices * abs(np.log((n + 1) / (target.n_vertices + 1)))
    if target.n_edges:
        score += target.weight_edges * abs(np.log((m + 1) / (target.n_edges + 1)))
    if target.global_squares:
        score += target.weight_squares * abs(
            np.log((squares + 1) / (target.global_squares + 1))
        )
    return n, m, squares, float(score)


def design_product(
    target: DesignTarget,
    library: Optional[Sequence[tuple[str, BipartiteGraph]]] = None,
    top_k: int = 5,
) -> List[DesignCandidate]:
    """Search factor pairs for the best Assumption-1(ii) products.

    Exhaustive over ordered pairs from ``library`` (default:
    :func:`default_factor_library`); every candidate is scored with the
    sublinear formulas.  Returns the ``top_k`` candidates, best first.
    Log-relative errors make the score scale-free, so "within 2x on
    every axis" beats "exact on one axis, 100x off on another".
    """
    if top_k <= 0:
        raise ValueError(f"top_k must be positive, got {top_k}")
    lib = list(library) if library is not None else default_factor_library()
    if not lib:
        raise ValueError("factor library is empty")
    candidates: List[DesignCandidate] = []
    for label_a, fa in lib:
        for label_b, fb in lib:
            bk = BipartiteKronecker(
                fa.graph, fb, Assumption.SELF_LOOPS_FACTOR, A_bipartite=fa
            )
            n, m, squares, score = _score(bk, target)
            candidates.append(
                DesignCandidate(
                    label_a=label_a,
                    label_b=label_b,
                    bk=bk,
                    n_vertices=n,
                    n_edges=m,
                    global_squares=squares,
                    score=score,
                )
            )
    candidates.sort(key=lambda c: c.score)
    return candidates[:top_k]
