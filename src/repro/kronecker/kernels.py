"""Fused kernels for the point-wise ground-truth formulas.

This is the hot core of the formula layer.  The closed forms of
Thms. 3/4/5 (and the derived Assumption-1(ii) edge formula) are all
sums of a handful of Kronecker-structured terms::

    s_C(γ(i, k))        = ½ Σ_t  sign_t · left_t[i] · right_t[k]
    ◇_C(γ(i,k), γ(j,l)) = 1 + α(i,j)·w3_B(k,l) − β_i(i,j)·d_B(k)
                            − β_j(i,j)·d_B(l)

so they can be evaluated *point-wise* on arbitrary index batches with
one vectorized pass -- no ``sp.kron`` term, no sparse addition, no
re-anchoring extraction.  The whole-product evaluations become stacked
integer matmuls (one output allocation, exact int64 arithmetic, values
bit-identical to the term-by-term ``sp.kron`` evaluation they replace);
batched point queries become gather + fused arithmetic.

The *batch primitives* -- hash-table build/probe and the gather+fuse
loops -- are pluggable through the :class:`~repro.kronecker.backends.
KernelBackend` protocol: every public function here takes a
``backend=`` kwarg (an instance or registered name) and otherwise
resolves the process selection (``use_backend`` scope >
``REPRO_KERNEL_BACKEND`` env var > default).  Backends are
bit-identical by contract; this module keeps the backend-independent
orchestration (coefficient algebra, bounds checks, CSR assembly).

Everything here consumes factors only through
:class:`~repro.kronecker.ground_truth.FactorStats` plus the
:class:`EdgeIndex` derived-quantity cache (sorted edge keys,
edge-aligned ``◇``/``W³``/degree arrays) that ``FactorStats`` memoizes
per factor, so repeated formula/oracle/stream calls never recompute a
sparse intermediate.

The per-entry coefficient forms (α, β_i, β_j) by assumption:

========================  ======================  ==========  ==========
left entry                α                        β_i         β_j
========================  ======================  ==========  ==========
1(i), ``(i,j) ∈ E_A``     ◇_ij + d_i + d_j − 1    d_i         d_j
1(ii) cross               ◇_ij + d_i + d_j + 2    d_i + 1     d_j + 1
1(ii) loop (``i = j``)    3·d_i + 1               d_i + 1     d_i + 1
========================  ======================  ==========  ==========

with ``w3_B(k,l) = ◇_kl + d_k + d_l − 1`` on the right factor (see
docs/derivations.md §2b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np
import scipy.sparse as sp

from repro.kronecker.assumptions import Assumption
from repro.kronecker.backends import KernelBackend, get_backend

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.kronecker.ground_truth import FactorStats

__all__ = [
    "EdgeIndex",
    "edge_coefficients",
    "edge_squares_batch",
    "product_edge_squares_csr",
    "vertex_terms",
    "vertex_term_matrices",
    "vertex_squares_grid",
    "vertex_squares_batch",
]

#: Cache-blocked batch evaluation: gathers for the edge formula run in
#: chunks of this many elements so each ~15-temporary pass stays
#: L2-resident regardless of backend.
_BATCH_CHUNK = 16384


# ---------------------------------------------------------------------------
# Per-factor derived-quantity cache
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EdgeIndex:
    """Edge-aligned lookup table for one factor, built once per factor.

    ``rows``/``cols`` enumerate the stored adjacency entries in
    ascending-key order (``key = row · n + col``); the value arrays are
    aligned with that order.  Membership/value queries go through an
    open-addressing hash table (``table_*``) -- ~1 gather per query at
    load factor 1/4, several times faster than per-query binary search
    while staying ``O(|E|)``-sized.  The table is built and probed by
    the selected :class:`~repro.kronecker.backends.KernelBackend`;
    layouts may differ per backend, probe answers may not.
    """

    n: int
    keys: np.ndarray        #: sorted ``row * n + col`` per stored entry
    rows: np.ndarray        #: entry row, aligned with ``keys``
    cols: np.ndarray        #: entry col, aligned with ``keys``
    diamond: np.ndarray     #: ``◇`` per stored entry (Def. 9)
    w3: np.ndarray          #: ``(X³ ∘ X)`` per stored entry
    d_rows: np.ndarray      #: ``d[row]`` per stored entry
    d_cols: np.ndarray      #: ``d[col]`` per stored entry
    table_keys: np.ndarray  #: hash slots -> key (-1 = empty)
    table_vals: np.ndarray  #: hash slots -> ``◇`` value
    table_shift: int        #: ``64 - log2(table size)``

    @classmethod
    def from_stats(
        cls, stats: "FactorStats", backend: str | KernelBackend | None = None
    ) -> "EdgeIndex":
        be = get_backend(backend)
        n = stats.n
        coo = stats.adj.tocoo()
        rows = coo.row.astype(np.int64)
        cols = coo.col.astype(np.int64)
        keys = rows * n + cols
        if keys.size and np.any(np.diff(keys) < 0):  # non-canonical storage
            order = np.argsort(keys, kind="stable")
            keys, rows, cols = keys[order], rows[order], cols[order]
        dia = _sparse_values_at(stats.diamond, rows, cols, n)
        d_rows = stats.d[rows]
        d_cols = stats.d[cols]
        table_keys, table_vals, table_shift = be.build_edge_table(keys, dia)
        return cls(
            n=n,
            keys=keys,
            rows=rows,
            cols=cols,
            diamond=dia,
            w3=dia + d_rows + d_cols - 1,
            d_rows=d_rows,
            d_cols=d_cols,
            table_keys=table_keys,
            table_vals=table_vals,
            table_shift=table_shift,
        )

    def diamond_at(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        backend: str | KernelBackend | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(is_edge, ◇)`` for arbitrary index pairs, vectorized.

        Non-edges report ``◇ = 0``.  One hash gather answers most
        queries; collision survivors advance slot-by-slot (linear
        probing, delegated to the selected backend).
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if self.keys.size == 0:
            shape = np.broadcast(rows, cols).shape
            return np.zeros(shape, dtype=bool), np.zeros(shape, dtype=np.int64)
        qk = rows * self.n + cols
        be = get_backend(backend)
        return be.probe_edge_table(self.table_keys, self.table_vals, self.table_shift, qk)

    def nbytes(self) -> int:
        """Actual bytes held by the cached arrays (dtype-aware)."""
        arrays = (self.keys, self.rows, self.cols, self.diamond,
                  self.w3, self.d_rows, self.d_cols,
                  self.table_keys, self.table_vals)
        return sum(a.nbytes for a in arrays)


def _sparse_values_at(mat: sp.csr_array, rows: np.ndarray, cols: np.ndarray, n: int) -> np.ndarray:
    """Values of a sparse matrix at index pairs (0 where absent),
    without scipy's fancy-index extraction machinery."""
    coo = mat.tocoo()
    mk = coo.row.astype(np.int64) * n + coo.col.astype(np.int64)
    mv = coo.data.astype(np.int64)
    if mk.size and np.any(np.diff(mk) < 0):
        order = np.argsort(mk, kind="stable")
        mk, mv = mk[order], mv[order]
    if mk.size == 0:
        return np.zeros(rows.shape, dtype=np.int64)
    qk = rows * n + cols
    pos = np.minimum(np.searchsorted(mk, qk), mk.size - 1)
    return np.where(mk[pos] == qk, mv[pos], 0)


# ---------------------------------------------------------------------------
# Vertex formulas (Thms. 3 and 4), point-wise
# ---------------------------------------------------------------------------


def vertex_terms(
    stats_a: "FactorStats", stats_b: "FactorStats", assumption: Assumption
) -> list[tuple[int, np.ndarray, np.ndarray]]:
    """The four (sign, left, right) vector triples of the vertex formula:
    ``s_C = (Σ sign · left ⊗ right) / 2``."""
    a, b = stats_a, stats_b
    if assumption is Assumption.NON_BIPARTITE_FACTOR:
        return [
            (+1, a.cw4, b.cw4),
            (-1, a.d * a.d, b.d * b.d),
            (-1, a.w2, b.w2),
            (+1, a.d, b.d),
        ]
    if assumption is Assumption.SELF_LOOPS_FACTOR:
        ones = np.ones(a.n, dtype=np.int64)
        cw4_m = 2 * a.s + a.d * a.d + a.w2 + 5 * a.d + ones  # diag((A+I)⁴), A bipartite
        d_m = a.d + ones
        w2_m = a.w2 + 2 * a.d + ones
        return [
            (+1, cw4_m, b.cw4),
            (-1, d_m * d_m, b.d * b.d),
            (-1, w2_m, b.w2),
            (+1, d_m, b.d),
        ]
    raise ValueError(f"unknown assumption {assumption!r}")  # pragma: no cover


def vertex_term_matrices(
    stats_a: "FactorStats", stats_b: "FactorStats", assumption: Assumption
) -> tuple[np.ndarray, np.ndarray]:
    """Stack the vertex terms into ``L (t, n_A)`` / ``R (t, n_B)`` with
    the signs folded into ``L``, so ``2 s_C = (Lᵀ R).ravel()``."""
    terms = vertex_terms(stats_a, stats_b, assumption)
    L = np.stack([sign * left for sign, left, _ in terms])
    R = np.stack([right for _, _, right in terms])
    return L, R


def _check_index_range(idx: np.ndarray, n: int, name: str) -> None:
    """Bounds-check a whole index batch with two reductions, so the hot
    gathers below can run with ``mode="clip"`` (no per-element checks)."""
    if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= n):
        raise IndexError(f"{name} indices out of range for factor of size {n}")


def _halve_even(acc: np.ndarray) -> np.ndarray:
    half, rem = np.divmod(acc, 2)
    assert not np.any(rem), "vertex square formula must yield even closed-walk excess"
    return half


def vertex_squares_grid(
    stats_a: "FactorStats", stats_b: "FactorStats", assumption: Assumption
) -> np.ndarray:
    """Fused ``s_C`` over the whole product, length ``n_A · n_B``.

    One integer matmul (``Lᵀ R``) instead of four full-size ``np.kron``
    terms summed into an accumulator: one output allocation, exact
    int64 arithmetic, bit-identical values.
    """
    L, R = vertex_term_matrices(stats_a, stats_b, assumption)
    return _halve_even((L.T @ R).ravel())


def vertex_squares_batch(
    stats_a: "FactorStats",
    stats_b: "FactorStats",
    assumption: Assumption,
    i: np.ndarray,
    k: np.ndarray,
    term_matrices: tuple[np.ndarray, np.ndarray] | None = None,
    backend: str | KernelBackend | None = None,
) -> np.ndarray:
    """Fused ``s_C(γ(i, k))`` at arbitrary factor-index batches.

    ``term_matrices`` lets a caller (the oracle) reuse precomputed
    ``(L, R)`` stacks across calls.  Evaluation is delegated to the
    selected backend (cache-blocked gathers on numpy, parallel-range
    loops on numba); the only full-batch memory traffic is reading the
    indices and writing the answers.
    """
    i = np.asarray(i, dtype=np.int64)
    k = np.asarray(k, dtype=np.int64)
    L, R = term_matrices if term_matrices is not None else vertex_term_matrices(
        stats_a, stats_b, assumption
    )
    _check_index_range(i, L.shape[1], "i")
    _check_index_range(k, R.shape[1], "k")
    return get_backend(backend).vertex_squares_pairs(L, R, i, k)


def vertex_squares_codes(
    stats_a: "FactorStats",
    stats_b: "FactorStats",
    assumption: Assumption,
    ps: np.ndarray,
    term_matrices: tuple[np.ndarray, np.ndarray] | None = None,
    backend: str | KernelBackend | None = None,
) -> np.ndarray:
    """:func:`vertex_squares_batch` at flat product codes
    ``p = i · n_B + k``.

    The ``divmod`` that splits codes into factor coordinates runs
    inside the backend's batch loop, so the split indices never make a
    full-size round-trip through DRAM -- this is the oracle's hot path
    for :meth:`~repro.kronecker.oracle.GroundTruthOracle.squares_at_vertices`.
    """
    ps = np.asarray(ps, dtype=np.int64)
    L, R = term_matrices if term_matrices is not None else vertex_term_matrices(
        stats_a, stats_b, assumption
    )
    _check_index_range(ps, L.shape[1] * R.shape[1], "product vertex")
    return get_backend(backend).vertex_squares_codes(L, R, ps)


# ---------------------------------------------------------------------------
# Edge formulas (Thm. 5 and the derived 1(ii) variant), point-wise
# ---------------------------------------------------------------------------


def edge_coefficients(
    stats_a: "FactorStats",
    assumption: Assumption,
    i: np.ndarray,
    j: np.ndarray,
    backend: str | KernelBackend | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Left-factor coefficient arrays ``(α, β_i, β_j, valid)``.

    For left entries ``(i, j)`` of the *effective* factor ``M`` the
    per-edge count against any right edge ``(k, l)`` is
    ``1 + α·w3_B(k,l) − β_i·d_B(k) − β_j·d_B(l)`` (module docstring
    table).  ``valid`` marks pairs that actually are ``M`` entries --
    ``E_A`` members, plus the diagonal under Assumption 1(ii).
    """
    i = np.asarray(i, dtype=np.int64)
    j = np.asarray(j, dtype=np.int64)
    _check_index_range(i, stats_a.n, "i")
    _check_index_range(j, stats_a.n, "j")
    found, dia = stats_a.edge_index.diamond_at(i, j, backend=backend)
    d_i = np.take(stats_a.d, i, mode="clip")
    d_j = np.take(stats_a.d, j, mode="clip")
    # ``dia``, ``found``, ``d_i``, ``d_j`` are fresh arrays owned by this
    # call, so α/β/valid are built in place (exact int64 -- evaluation
    # order cannot change the values).
    alpha = dia
    alpha += d_i
    alpha += d_j
    if assumption is Assumption.SELF_LOOPS_FACTOR:
        alpha += 2
        loop = i == j
        if loop.any():
            alpha[loop] = 3 * d_i[loop] + 1
        valid = found
        valid |= loop
        beta_i = d_i
        beta_i += 1
        beta_j = d_j
        beta_j += 1
    elif assumption is Assumption.NON_BIPARTITE_FACTOR:
        alpha -= 1
        beta_i = d_i
        beta_j = d_j
        valid = found
    else:  # pragma: no cover - enum is closed
        raise ValueError(f"unknown assumption {assumption!r}")
    return alpha, beta_i, beta_j, valid


def edge_squares_batch(
    stats_a: "FactorStats",
    stats_b: "FactorStats",
    assumption: Assumption,
    i: np.ndarray,
    j: np.ndarray,
    k: np.ndarray,
    ell: np.ndarray,
    backend: str | KernelBackend | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Fused ``◇_C`` at arbitrary ``(i, j, k, l)`` batches (the paper's
    factor coordinates; ``l`` is spelled ``ell``).

    Returns ``(values, valid)``: ``valid[t]`` is False (and
    ``values[t]`` 0) when ``(γ(i,k), γ(j,l))`` is not a product edge --
    masking instead of raise-per-query, so millions of speculative
    queries cost one vectorized pass.

    Large 1-D batches are evaluated in cache-sized chunks: the edge
    formula walks ~15 same-length temporaries, and chunking keeps all
    of them L2-resident instead of streaming each pass through DRAM.
    """
    be = get_backend(backend)
    i = np.asarray(i, dtype=np.int64)
    j = np.asarray(j, dtype=np.int64)
    k = np.asarray(k, dtype=np.int64)
    ell = np.asarray(ell, dtype=np.int64)
    n = i.size
    if i.ndim != 1 or n <= _BATCH_CHUNK:
        return _edge_squares_block(stats_a, stats_b, assumption, i, j, k, ell, be)
    vals = np.empty(n, dtype=np.int64)
    valid = np.empty(n, dtype=bool)
    for s in range(0, n, _BATCH_CHUNK):
        e = min(s + _BATCH_CHUNK, n)
        vals[s:e], valid[s:e] = _edge_squares_block(
            stats_a, stats_b, assumption, i[s:e], j[s:e], k[s:e], ell[s:e], be
        )
    return vals, valid


def _edge_squares_block(
    stats_a: "FactorStats",
    stats_b: "FactorStats",
    assumption: Assumption,
    i: np.ndarray,
    j: np.ndarray,
    k: np.ndarray,
    ell: np.ndarray,
    be: KernelBackend,
) -> tuple[np.ndarray, np.ndarray]:
    """One cache-sized block of :func:`edge_squares_batch`: gather the
    operands, hand the fused arithmetic to the backend."""
    alpha, beta_i, beta_j, valid_a = edge_coefficients(stats_a, assumption, i, j, backend=be)
    _check_index_range(k, stats_b.n, "k")
    _check_index_range(ell, stats_b.n, "l")
    found_b, dia_b = stats_b.edge_index.diamond_at(k, ell, backend=be)
    d_k = np.take(stats_b.d, k, mode="clip")
    d_l = np.take(stats_b.d, ell, mode="clip")
    return be.edge_squares_fuse(alpha, beta_i, beta_j, valid_a, dia_b, found_b, d_k, d_l)


def product_edge_squares_csr(
    stats_a: "FactorStats",
    stats_b: "FactorStats",
    assumption: Assumption,
    m_rows: np.ndarray,
    m_cols: np.ndarray,
    backend: str | KernelBackend | None = None,
) -> sp.csr_array:
    """Fused ``◇_C`` over the *whole* product pattern.

    ``m_rows``/``m_cols`` enumerate the stored entries of the effective
    left factor ``M`` (including the diagonal under Assumption 1(ii));
    every one is expanded against all stored entries of ``B``.  The
    value block is a single stacked integer matmul
    ``(α | β_i | β_j)ᵀ (w3_B | −d_k | −d_l) + 1`` -- one ``|E_C|``-sized
    output allocation, no intermediate ``sp.kron`` term, no
    re-anchoring extraction.  The returned CSR has pattern equal to the
    product adjacency with explicit zeros on square-free edges,
    bit-identical to the legacy term-by-term evaluation.
    """
    n_b = stats_b.n
    shape = (stats_a.n * n_b, stats_a.n * n_b)
    idx_b = stats_b.edge_index
    m_rows = np.asarray(m_rows, dtype=np.int64)
    m_cols = np.asarray(m_cols, dtype=np.int64)
    if m_rows.size == 0 or idx_b.rows.size == 0:
        return sp.csr_array(shape, dtype=np.int64)
    alpha, beta_i, beta_j, valid = edge_coefficients(
        stats_a, assumption, m_rows, m_cols, backend=backend
    )
    if not valid.all():
        bad = int(np.flatnonzero(~valid)[0])
        raise ValueError(
            f"left entry ({int(m_rows[bad])}, {int(m_cols[bad])}) is not an edge of M"
        )
    L = np.stack((alpha, beta_i, beta_j))               # (3, nnz_M)
    R = np.stack((idx_b.w3, -idx_b.d_rows, -idx_b.d_cols))  # (3, nnz_B)
    vals = L.T @ R                                      # the one |E_C| value block
    vals += 1
    p = (m_rows[:, None] * n_b + idx_b.rows).ravel()
    q = (m_cols[:, None] * n_b + idx_b.cols).ravel()
    return sp.csr_array(sp.coo_array((vals.ravel(), (p, q)), shape=shape))


def edge_term_matrices(
    stats_a: "FactorStats",
    stats_b: "FactorStats",
    assumption: Assumption,
    m_rows: np.ndarray,
    m_cols: np.ndarray,
    backend: str | KernelBackend | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """``(L, R)`` stacks such that ``◇ block = Lᵀ[sel] R + 1``.

    The chunked streaming path uses these to evaluate many coalesced
    per-``M``-entry blocks with one ``np.matmul`` into a preallocated
    buffer.
    """
    alpha, beta_i, beta_j, _ = edge_coefficients(
        stats_a, assumption, m_rows, m_cols, backend=backend
    )
    idx_b = stats_b.edge_index
    L = np.stack((alpha, beta_i, beta_j))
    R = np.stack((idx_b.w3, -idx_b.d_rows, -idx_b.d_cols))
    return L, R


def stats_arrays(stats: "FactorStats", include_cached: bool = True) -> Sequence[np.ndarray]:
    """Every array a :class:`FactorStats` holds, for byte accounting.

    Includes the sparse matrices' internal arrays and -- when
    ``include_cached`` and it has been materialized -- the
    :class:`EdgeIndex` derived cache.
    """
    arrays: list[np.ndarray] = [stats.d, stats.w2, stats.s, stats.cw4]
    for mat in (stats.diamond, stats.adj):
        arrays.extend((mat.data, mat.indices, mat.indptr))
    if include_cached:
        cached = stats.__dict__.get("edge_index")
        if cached is not None:
            arrays.extend(
                (cached.keys, cached.rows, cached.cols, cached.diamond,
                 cached.w3, cached.d_rows, cached.d_cols,
                 cached.table_keys, cached.table_vals)
            )
    return arrays
