"""Uniform sampling of product vertices/edges with attached ground truth.

§I closes with: a GraphBLAS implementation "could be used to sample
4-cycle counts at edges and vertices without materializing the full
Kronecker products to validate algorithms on massive graphs."  That is
precisely this module:

* :func:`sample_vertices` -- uniform product vertices + exact
  ``s_C(p)``;
* :func:`sample_edges` -- uniform *stored entries* of ``C`` + exact
  ``◇_C(p, q)``.  Uniformity over entries is exact by construction:
  every stored entry of ``C`` is an (M-entry, B-entry) pair, so a
  uniform pair is a uniform entry (all blocks have equal size
  ``nnz(B)``).

Everything runs on factor-sized state via the
:class:`~repro.kronecker.oracle.GroundTruthOracle`; no part of ``C`` is
ever formed.
"""

from __future__ import annotations

import numpy as np

from repro.kronecker.assumptions import BipartiteKronecker
from repro.kronecker.oracle import GroundTruthOracle
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = ["sample_vertices", "sample_edges"]


def sample_vertices(bk: BipartiteKronecker, k: int, seed=None, oracle: GroundTruthOracle | None = None):
    """Sample ``k`` uniform product vertices with their ground truth.

    Returns ``(p, degrees, squares)`` parallel arrays; vertices are
    drawn with replacement (the massive-scale regime where collisions
    are negligible and replacement keeps the estimator clean).
    """
    k = check_positive(k, "k")
    rng = as_generator(seed)
    oracle = oracle or GroundTruthOracle(bk)
    p = rng.integers(0, bk.n, size=k, dtype=np.int64)
    degrees = np.fromiter((oracle.degree(int(v)) for v in p), dtype=np.int64, count=k)
    squares = np.fromiter((oracle.squares_at_vertex(int(v)) for v in p), dtype=np.int64, count=k)
    return p, degrees, squares


def sample_edges(bk: BipartiteKronecker, k: int, seed=None, oracle: GroundTruthOracle | None = None):
    """Sample ``k`` uniform stored entries of ``C`` with ground truth.

    Returns ``(p, q, squares)`` parallel arrays.  Each directed stored
    entry of ``C`` is equally likely; for undirected-edge sampling note
    every edge appears as two entries, so the induced edge distribution
    is also uniform.
    """
    k = check_positive(k, "k")
    rng = as_generator(seed)
    oracle = oracle or GroundTruthOracle(bk)
    m_coo = bk.M.adj.tocoo()
    b_coo = bk.B.graph.adj.tocoo()
    n_b = bk.B.graph.n
    mi = rng.integers(0, m_coo.nnz, size=k)
    bi = rng.integers(0, b_coo.nnz, size=k)
    p = m_coo.row[mi].astype(np.int64) * n_b + b_coo.row[bi].astype(np.int64)
    q = m_coo.col[mi].astype(np.int64) * n_b + b_coo.col[bi].astype(np.int64)
    squares = np.fromiter(
        (oracle.squares_at_edge(int(a), int(b)) for a, b in zip(p, q)), dtype=np.int64, count=k
    )
    return p, q, squares
