"""Streaming edge generation of Kronecker products.

The generation use case (§I, §V "implement this style of generator ...
including using the ground truth formulas derived here to compute
ground truth values during generation"): emit the edges of
``C = M ⊗ B`` in factor-edge-sized blocks without ever holding ``C``.

For every stored nonzero ``(i, j)`` of ``M`` the block
``{(i * n_B + k, j * n_B + l) : (k, l) ∈ nnz(B)}`` is produced with two
vectorised index operations.  Each *directed* stored entry of ``C``
appears exactly once across the stream; callers wanting undirected
edges once can filter ``p <= q`` per block (the helper does this for
its edge-count audit).

``attach_ground_truth=True`` additionally emits the per-edge 4-cycle
count of every streamed edge, computed from factor statistics on the
fly -- ground truth *during generation*, the paper's future-work item.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.kronecker.assumptions import Assumption, BipartiteKronecker
from repro.kronecker.ground_truth import FactorStats, _w3_on_edges
from repro.obs import get_metrics, get_tracer

__all__ = ["stream_edges", "streamed_connectivity_audit"]


def stream_edges(
    bk: BipartiteKronecker,
    attach_ground_truth: bool = False,
) -> Iterator[tuple[np.ndarray, np.ndarray] | tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Yield the product's directed edges in per-``M``-entry blocks.

    Yields ``(p, q)`` index-array pairs -- or ``(p, q, diamonds)``
    triples when ``attach_ground_truth`` -- one block per stored entry
    of the effective left factor ``M``.  Memory per block is
    ``O(nnz(B))``.
    """
    M = bk.M
    B = bk.B.graph
    n_b = B.n
    b_coo = B.adj.tocoo()
    bk_rows = b_coo.row.astype(np.int64)
    bk_cols = b_coo.col.astype(np.int64)

    # Per-block accounting, gated on one boolean so the disabled path
    # pays a single branch per block (the plain stream emits a block in
    # ~1.5 µs; even no-op method calls would be measurable here).
    metrics = get_metrics()
    tracking = metrics.enabled
    if tracking:
        edges_streamed = metrics.counter("edges_streamed_total")
        blocks_streamed = metrics.counter("stream.blocks_total")
        block_bytes = metrics.histogram("stream.block_size_bytes")

    if attach_ground_truth:
        with get_tracer().span("stream.setup_ground_truth"):
            stats_a, stats_b = bk.factor_stats()
            with_loops = bk.assumption is Assumption.SELF_LOOPS_FACTOR
            d_b = stats_b.d
            w3_b = np.asarray(_w3_on_edges(stats_b)[bk_rows, bk_cols]).ravel()
            d_a = stats_a.d

    m_coo = M.adj.tocoo()
    for i, j in zip(m_coo.row.tolist(), m_coo.col.tolist()):
        p = i * n_b + bk_rows
        q = j * n_b + bk_cols
        if tracking:
            edges_streamed.inc(p.size)
            blocks_streamed.inc()
        if not attach_ground_truth:
            if tracking:
                block_bytes.observe(p.nbytes + q.nbytes)
            yield p, q
            continue
        d_k = d_b[bk_rows]
        d_l = d_b[bk_cols]
        if with_loops and i == j:
            dia = 1 + (3 * d_a[i] + 1) * w3_b - (d_a[i] + 1) * (d_k + d_l)
        else:
            dia_a = _csr_lookup(stats_a.diamond, i, j)
            if with_loops:
                dia = 1 + (dia_a + d_a[i] + d_a[j] + 2) * w3_b - (d_a[i] + 1) * d_k - (d_a[j] + 1) * d_l
            else:
                dia = 1 + (dia_a + d_a[i] + d_a[j] - 1) * w3_b - d_a[i] * d_k - d_a[j] * d_l
        if tracking:
            block_bytes.observe(p.nbytes + q.nbytes + np.asarray(dia).nbytes)
        yield p, q, dia


def _csr_lookup(csr, i: int, j: int) -> int:
    """Entry (i, j) of a canonical CSR matrix (0 when absent)."""
    row = csr.indices[csr.indptr[i] : csr.indptr[i + 1]]
    pos = np.searchsorted(row, j)
    if pos < row.size and row[pos] == j:
        return int(csr.data[csr.indptr[i] + pos])
    return 0


def streamed_connectivity_audit(bk: BipartiteKronecker) -> tuple[int, int]:
    """Stream the whole product through a connectivity reduction.

    Returns ``(n_components, edges_seen)`` where ``edges_seen`` counts
    undirected edges once.  This is how a generator can *certify*
    Thms. 1-2 on a product too large to materialize as an adjacency.

    Implementation: the streamed blocks are buffered into flat endpoint
    arrays and resolved with vectorised min-label propagation
    (:func:`~repro.graphs.connectivity.components_from_edge_arrays`) --
    ~10x faster than a per-edge Python union-find at multi-million-edge
    scale, at the cost of O(|E_C|) transient index memory.  For an
    O(n_C)-memory variant, feed :class:`~repro.graphs.connectivity.UnionFind`
    block by block instead.
    """
    from repro.graphs.connectivity import components_from_edge_arrays

    with get_tracer().span("stream.connectivity_audit", n=bk.n) as sp:
        us, vs = [], []
        edges = 0
        for p, q in stream_edges(bk):
            keep = p <= q
            us.append(p[keep])
            vs.append(q[keep])
            edges += int(p[keep].size)
        u = np.concatenate(us) if us else np.empty(0, dtype=np.int64)
        v = np.concatenate(vs) if vs else np.empty(0, dtype=np.int64)
        labels = components_from_edge_arrays(bk.n, u, v)
        n_components = int(np.unique(labels).size)
        sp.set(edges=edges, components=n_components)
    return n_components, edges
