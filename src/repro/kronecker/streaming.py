"""Streaming edge generation of Kronecker products.

The generation use case (§I, §V "implement this style of generator ...
including using the ground truth formulas derived here to compute
ground truth values during generation"): emit the edges of
``C = M ⊗ B`` in factor-edge-sized blocks without ever holding ``C``.

For every stored nonzero ``(i, j)`` of ``M`` the block
``{(i * n_B + k, j * n_B + l) : (k, l) ∈ nnz(B)}`` is produced with two
vectorised index operations.  Each *directed* stored entry of ``C``
appears exactly once across the stream; callers wanting undirected
edges once can filter ``p <= q`` per block (the helper does this for
its edge-count audit).

``backend=`` on :func:`stream_edges` selects the kernel backend for
the coefficient lookups (:mod:`repro.kronecker.backends`); the
``edges_streamed_total`` metric is labeled with the resolved name.

``attach_ground_truth=True`` additionally emits the per-edge 4-cycle
count of every streamed edge, computed from factor statistics on the
fly -- ground truth *during generation*, the paper's future-work item.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.kronecker import kernels
from repro.kronecker.assumptions import BipartiteKronecker
from repro.kronecker.backends import KernelBackend, get_backend
from repro.obs import get_events, get_metrics, get_tracer

__all__ = ["stream_edges", "stream_chain_edges", "streamed_connectivity_audit"]


def stream_edges(
    bk: BipartiteKronecker,
    attach_ground_truth: bool = False,
    block_edges: int | None = None,
    backend: str | KernelBackend | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray] | tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Yield the product's directed edges in factor-edge-sized blocks.

    Yields ``(p, q)`` index-array pairs -- or ``(p, q, diamonds)``
    triples when ``attach_ground_truth``.  By default one block is
    emitted per stored entry of the effective left factor ``M``
    (memory per block ``O(nnz(B))``).

    ``block_edges`` coalesces many small per-``M``-entry blocks into
    chunks of roughly that many edges, for the large-``M`` ⊗ small-``B``
    regime where per-block Python overhead dominates.  Coefficient
    lookups are hoisted out of the loop and each chunk's diamonds come
    from one ``np.matmul`` into a preallocated buffer.  **Buffer-reuse
    contract:** with ``block_edges`` set, the yielded arrays are views
    into reused buffers, invalidated by the next iteration -- copy them
    (e.g. boolean-index or ``.copy()``) before retaining.
    """
    be = get_backend(backend)
    M = bk.M
    B = bk.B.graph
    n_b = B.n
    b_coo = B.adj.tocoo()
    bk_rows = b_coo.row.astype(np.int64)
    bk_cols = b_coo.col.astype(np.int64)
    nnz_b = bk_rows.size

    # Per-block accounting, gated on one boolean so the disabled path
    # pays a single branch per block (the plain stream emits a block in
    # ~1.5 µs; even no-op method calls would be measurable here).
    metrics = get_metrics()
    tracking = metrics.enabled
    if tracking:
        edges_streamed = metrics.counter("edges_streamed_total", backend=be.name)
        blocks_streamed = metrics.counter("stream.blocks_total")
        block_bytes = metrics.histogram("stream.block_size_bytes")
    # Event emission is gated the same way: one boolean per block.
    events = get_events()
    emitting = events.enabled

    m_coo = M.adj.tocoo()
    m_rows = m_coo.row.astype(np.int64)
    m_cols = m_coo.col.astype(np.int64)

    if attach_ground_truth:
        # Loop-invariant lookups, hoisted: the per-entry left-factor
        # coefficients (α, β_i, β_j -- kernels module docstring) and the
        # edge-aligned right-factor arrays, computed once for the whole
        # stream instead of once per block.
        with get_tracer().span("stream.setup_ground_truth"):
            stats_a, stats_b = bk.factor_stats()
            alpha, beta_i, beta_j, _ = kernels.edge_coefficients(
                stats_a, bk.assumption, m_rows, m_cols, backend=be
            )
            d_k = stats_b.d[bk_rows]
            d_l = stats_b.d[bk_cols]
            _, dia_b = stats_b.edge_index.diamond_at(bk_rows, bk_cols, backend=be)
            w3_b = dia_b + d_k + d_l - 1
            neg_d_k = -d_k
            neg_d_l = -d_l

    if block_edges is not None and nnz_b > 0:
        # Chunked path: `per_chunk` M entries per yielded block, with
        # preallocated index/value buffers reused across iterations.
        per_chunk = max(1, int(block_edges) // nnz_b)
        p_buf = np.empty((per_chunk, nnz_b), dtype=np.int64)
        q_buf = np.empty((per_chunk, nnz_b), dtype=np.int64)
        if attach_ground_truth:
            dia_buf = np.empty((per_chunk, nnz_b), dtype=np.int64)
            right = np.stack((w3_b, neg_d_k, neg_d_l))  # (3, nnz_B)
        for t0 in range(0, m_rows.size, per_chunk):
            t1 = min(t0 + per_chunk, m_rows.size)
            cnt = t1 - t0
            np.add(m_rows[t0:t1, None] * n_b, bk_rows, out=p_buf[:cnt])
            np.add(m_cols[t0:t1, None] * n_b, bk_cols, out=q_buf[:cnt])
            p = p_buf[:cnt].reshape(-1)
            q = q_buf[:cnt].reshape(-1)
            if tracking:
                edges_streamed.inc(p.size)
                blocks_streamed.inc()
            if emitting:
                events.emit("stream.block", edges=int(p.size), chunked=True)
            if not attach_ground_truth:
                if tracking:
                    block_bytes.observe(p.nbytes + q.nbytes)
                yield p, q
                continue
            left = np.stack((alpha[t0:t1], beta_i[t0:t1], beta_j[t0:t1]))
            np.matmul(left.T, right, out=dia_buf[:cnt])
            dia_buf[:cnt] += 1
            dia = dia_buf[:cnt].reshape(-1)
            if tracking:
                block_bytes.observe(p.nbytes + q.nbytes + dia.nbytes)
            yield p, q, dia
        return

    for t in range(m_rows.size):
        p = m_rows[t] * n_b + bk_rows
        q = m_cols[t] * n_b + bk_cols
        if tracking:
            edges_streamed.inc(p.size)
            blocks_streamed.inc()
        if emitting:
            events.emit("stream.block", edges=int(p.size), chunked=False)
        if not attach_ground_truth:
            if tracking:
                block_bytes.observe(p.nbytes + q.nbytes)
            yield p, q
            continue
        dia = 1 + alpha[t] * w3_b + beta_i[t] * neg_d_k + beta_j[t] * neg_d_l
        if tracking:
            block_bytes.observe(p.nbytes + q.nbytes + dia.nbytes)
        yield p, q, dia


def stream_chain_edges(
    chain,
    attach_ground_truth: bool = False,
    block_edges: int | None = None,
    start: int | None = None,
    stop: int | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray] | tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Instrumented edge stream of a deep Kronecker chain.

    The extreme-scale analogue of :func:`stream_edges`: blocks come
    from :meth:`KroneckerChain.stream_rows
    <repro.kronecker.multifactor.KroneckerChain.stream_rows>` (a
    product-row range, closed-form per-entry 4-cycle counts with
    ``attach_ground_truth``) and the same ``edges_streamed_total`` /
    ``stream.blocks_total`` telemetry is emitted, gated on one boolean
    per block.  ``start``/``stop`` restrict to rows ``[start, stop)``
    (default: the whole product), which is how a shard worker streams
    exactly its partition.
    """
    lo = 0 if start is None else int(start)
    hi = chain.n if stop is None else int(stop)
    metrics = get_metrics()
    tracking = metrics.enabled
    if tracking:
        edges_streamed = metrics.counter("edges_streamed_total", backend="chain")
        blocks_streamed = metrics.counter("stream.blocks_total")
        block_bytes = metrics.histogram("stream.block_size_bytes")
    events = get_events()
    emitting = events.enabled
    for block in chain.stream_rows(
        lo, hi, attach_ground_truth=attach_ground_truth, block_entries=block_edges
    ):
        if tracking:
            edges_streamed.inc(int(block[0].size))
            blocks_streamed.inc()
            block_bytes.observe(sum(a.nbytes for a in block))
        if emitting:
            events.emit("stream.block", edges=int(block[0].size), chunked=True)
        yield block


def streamed_connectivity_audit(bk: BipartiteKronecker) -> tuple[int, int]:
    """Stream the whole product through a connectivity reduction.

    Returns ``(n_components, edges_seen)`` where ``edges_seen`` counts
    undirected edges once.  This is how a generator can *certify*
    Thms. 1-2 on a product too large to materialize as an adjacency.

    Implementation: the streamed blocks are buffered into flat endpoint
    arrays and resolved with vectorised min-label propagation
    (:func:`~repro.graphs.connectivity.components_from_edge_arrays`) --
    ~10x faster than a per-edge Python union-find at multi-million-edge
    scale, at the cost of O(|E_C|) transient index memory.  For an
    O(n_C)-memory variant, feed :class:`~repro.graphs.connectivity.UnionFind`
    block by block instead.
    """
    from repro.graphs.connectivity import components_from_edge_arrays

    with get_tracer().span("stream.connectivity_audit", n=bk.n) as sp:
        us, vs = [], []
        edges = 0
        for p, q in stream_edges(bk):
            keep = p <= q
            us.append(p[keep])
            vs.append(q[keep])
            edges += int(p[keep].size)
        u = np.concatenate(us) if us else np.empty(0, dtype=np.int64)
        v = np.concatenate(vs) if vs else np.empty(0, dtype=np.int64)
        labels = components_from_edge_arrays(bk.n, u, v)
        n_components = int(np.unique(labels).size)
        sp.set(edges=edges, components=n_components)
    return n_components, edges
