"""Numba kernel backend: nopython, parallel-ranged batch loops.

Only imported when numba is installed (the ``numba`` optional extra);
:mod:`repro.kronecker.backends` guards the import and degrades to the
numpy reference backend otherwise.

Design notes
------------
* Every jitted function is ``cache=True`` so the compile cost is paid
  once per machine, not once per process -- the CI backend-matrix job
  and short CLI runs would otherwise spend longer compiling than
  computing.
* Hash math stays entirely in uint64 (mixing int64/uint64 in numba
  silently upcasts to float64, which would corrupt the Fibonacci
  multiply) and only the final slot index is cast back.
* Table *layout* differs from the numpy backend (sequential insertion
  vs vectorized rounds places collision runs in a different order) but
  probe results are bit-identical, which is the backend contract --
  tables are never persisted, only their answers.
* The parity check of the vertex formula is a ``prange`` reduction
  (numba can parallelize sum reductions); the raise happens in the
  Python wrapper so error semantics match the reference backend.
"""

from __future__ import annotations

import numpy as np
from numba import njit, prange

from repro.kronecker.backends import table_bits

__all__ = ["NumbaBackend"]

_MULT = np.uint64(0x9E3779B97F4A7C15)
_ONE = np.uint64(1)


@njit(cache=True)
def _build_table(keys, vals, size, shift):
    table_keys = np.full(size, -1, np.int64)
    table_vals = np.zeros(size, np.int64)
    mask = np.uint64(size - 1)
    sh = np.uint64(shift)
    for t in range(keys.size):
        key = keys[t]
        pos = (np.uint64(key) * _MULT) >> sh
        while table_keys[pos] != -1:
            pos = (pos + _ONE) & mask
        table_keys[pos] = key
        table_vals[pos] = vals[t]
    return table_keys, table_vals


@njit(cache=True, parallel=True)
def _probe_table(table_keys, table_vals, shift, query_keys, found, vals):
    mask = np.uint64(table_keys.size - 1)
    sh = np.uint64(shift)
    for t in prange(query_keys.size):
        key = query_keys[t]
        pos = (np.uint64(key) * _MULT) >> sh
        while True:
            slot_key = table_keys[pos]
            if slot_key == key:
                found[t] = True
                vals[t] = table_vals[pos]
                break
            if slot_key == -1:
                found[t] = False
                vals[t] = 0
                break
            pos = (pos + _ONE) & mask


@njit(cache=True, parallel=True)
def _degrees(d_m, d_b, i, k, out):
    for t in prange(i.size):
        out[t] = d_m[i[t]] * d_b[k[t]]


@njit(cache=True, parallel=True)
def _vertex_pairs(L, R, i, k, out):
    n_terms = L.shape[0]
    odd = np.int64(0)
    for t in prange(i.size):
        acc = np.int64(0)
        for s in range(n_terms):
            acc += L[s, i[t]] * R[s, k[t]]
        odd += acc & 1
        out[t] = acc >> 1
    return odd


@njit(cache=True, parallel=True)
def _vertex_codes(L, R, ps, n_b, out):
    n_terms = L.shape[0]
    odd = np.int64(0)
    for t in prange(ps.size):
        iv = ps[t] // n_b
        kv = ps[t] - iv * n_b
        acc = np.int64(0)
        for s in range(n_terms):
            acc += L[s, iv] * R[s, kv]
        odd += acc & 1
        out[t] = acc >> 1
    return odd


@njit(cache=True, parallel=True)
def _edge_fuse(alpha, beta_i, beta_j, valid_a, dia_b, found_b, d_k, d_l, vals, valid):
    for t in prange(alpha.size):
        ok = valid_a[t] and found_b[t]
        valid[t] = ok
        if ok:
            w3 = dia_b[t] + d_k[t] + d_l[t] - 1
            vals[t] = 1 + alpha[t] * w3 - beta_i[t] * d_k[t] - beta_j[t] * d_l[t]
        else:
            vals[t] = 0


@njit(cache=True, parallel=True)
def _wing_bounds(vals, valid):
    for t in prange(vals.size):
        if not valid[t]:
            vals[t] = -1


@njit(cache=True, parallel=True)
def _max_wing(vals, valid):
    # Written as ``best = max(best, v)`` so numba recognises the
    # parallel max reduction (a guarded assignment would race).
    best = np.int64(0)
    for t in prange(vals.size):
        v = vals[t] if valid[t] else np.int64(0)
        best = max(best, v)
    return best


@njit(cache=True, parallel=True)
def _edge_clustering(dia, d_p, d_q, out):
    for t in prange(dia.size):
        if dia[t] >= 0 and d_p[t] >= 2 and d_q[t] >= 2:
            out[t] = dia[t] / ((d_p[t] - 1.0) * (d_q[t] - 1.0))
        else:
            out[t] = np.nan


class NumbaBackend:
    """Parallel nopython implementation of the kernel primitives."""

    name = "numba"

    def build_edge_table(
        self, keys: np.ndarray, vals: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int]:
        size, shift = table_bits(keys.size)
        table_keys, table_vals = _build_table(keys, vals, size, shift)
        return table_keys, table_vals, shift

    def probe_edge_table(
        self,
        table_keys: np.ndarray,
        table_vals: np.ndarray,
        shift: int,
        query_keys: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        found = np.empty(query_keys.size, dtype=np.bool_)
        vals = np.empty(query_keys.size, dtype=np.int64)
        _probe_table(table_keys, table_vals, shift, query_keys, found, vals)
        return found, vals

    def degrees(
        self, d_m: np.ndarray, d_b: np.ndarray, i: np.ndarray, k: np.ndarray
    ) -> np.ndarray:
        out = np.empty(i.size, dtype=np.int64)
        _degrees(d_m, d_b, i, k, out)
        return out

    def vertex_squares_pairs(
        self, L: np.ndarray, R: np.ndarray, i: np.ndarray, k: np.ndarray
    ) -> np.ndarray:
        out = np.empty(i.size, dtype=np.int64)
        odd = _vertex_pairs(np.ascontiguousarray(L), np.ascontiguousarray(R), i, k, out)
        assert not int(odd), "vertex square formula must yield even closed-walk excess"
        return out

    def vertex_squares_codes(self, L: np.ndarray, R: np.ndarray, ps: np.ndarray) -> np.ndarray:
        out = np.empty(ps.size, dtype=np.int64)
        odd = _vertex_codes(
            np.ascontiguousarray(L), np.ascontiguousarray(R), ps, np.int64(R.shape[1]), out
        )
        assert not int(odd), "vertex square formula must yield even closed-walk excess"
        return out

    def edge_squares_fuse(
        self,
        alpha: np.ndarray,
        beta_i: np.ndarray,
        beta_j: np.ndarray,
        valid_a: np.ndarray,
        dia_b: np.ndarray,
        found_b: np.ndarray,
        d_k: np.ndarray,
        d_l: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        vals = np.empty(alpha.size, dtype=np.int64)
        valid = np.empty(alpha.size, dtype=np.bool_)
        _edge_fuse(alpha, beta_i, beta_j, valid_a, dia_b, found_b, d_k, d_l, vals, valid)
        return vals, valid

    def edge_clustering(
        self, dia: np.ndarray, d_p: np.ndarray, d_q: np.ndarray
    ) -> np.ndarray:
        out = np.empty(dia.size, dtype=np.float64)
        _edge_clustering(dia, d_p, d_q, out)
        return out

    def wing_bounds_fuse(self, vals: np.ndarray, valid: np.ndarray) -> np.ndarray:
        _wing_bounds(vals, valid)
        return vals

    def max_wing_reduce(self, vals: np.ndarray, valid: np.ndarray) -> int:
        return int(_max_wing(vals, valid))
