"""Connectivity theory for bipartite Kronecker products (§III-A).

:func:`predict_product_connectivity` applies the paper's results
*without touching the product*:

* Thm. 1 -- non-bipartite connected ``A`` x bipartite connected ``B``
  -> connected.
* Thm. 2 -- ``(A + I_A)`` with ``A``, ``B`` bipartite connected
  -> connected.
* Weichsel -- two connected bipartite loop-free factors -> exactly two
  components, whose vertex sets :func:`weichsel_components` constructs
  from the four part-products ``{U_A ⊕ U_B}, {U_A ⊕ W_B},
  {W_A ⊕ U_B}, {W_A ⊕ W_B}``.

Tests confirm every prediction against BFS on the materialized product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.graphs.bipartite import BipartiteGraph, bipartition
from repro.graphs.connectivity import is_connected
from repro.graphs.graph import Graph

__all__ = [
    "ConnectivityPrediction",
    "predict_product_connectivity",
    "weichsel_components",
]


@dataclass(frozen=True)
class ConnectivityPrediction:
    """Theory-derived prediction about a product's connectivity.

    ``connected`` is ``None`` when the paper's theorems don't cover the
    configuration (e.g. a disconnected factor); ``reason`` names the
    applicable result.
    """

    connected: Optional[bool]
    bipartite: bool
    reason: str


def predict_product_connectivity(M: Graph, B: Graph) -> ConnectivityPrediction:
    """Predict connectivity/bipartiteness of ``G_C`` for ``C = M ⊗ B``.

    ``M`` is the *effective* left factor (pass ``A + I_A`` yourself for
    the Assumption-1(ii) case -- or use
    :class:`~repro.kronecker.assumptions.BipartiteKronecker`, which
    does).
    """
    colors_b, _ = bipartition(B)
    b_bipartite = colors_b is not None
    if not b_bipartite:
        # Out of the paper's scope: the product is not bipartite (B has
        # an odd cycle and so can contribute odd cycles to C).
        return ConnectivityPrediction(None, False, "factor B not bipartite: outside §III scope")
    if not is_connected(M) or not is_connected(B):
        return ConnectivityPrediction(None, True, "disconnected factor: theorems do not apply")
    colors_m, _ = bipartition(M)
    if colors_m is None:
        if M.has_all_self_loops and is_bipartite_without_loops(M):
            return ConnectivityPrediction(True, True, "Thm 2: all self loops on bipartite A")
        return ConnectivityPrediction(True, True, "Thm 1: non-bipartite connected A")
    # M bipartite (hence loop-free): Weichsel disconnection.
    return ConnectivityPrediction(False, True, "Weichsel: bipartite x bipartite disconnects")


def is_bipartite_without_loops(M: Graph) -> bool:
    """True iff ``M`` with its loops stripped is bipartite.

    Distinguishes "non-bipartite because of the added ``I_A``"
    (Thm. 2 territory) from genuinely odd-cyclic factors (Thm. 1).
    """
    colors, _ = bipartition(M.without_self_loops())
    return colors is not None


def weichsel_components(A: BipartiteGraph, B: BipartiteGraph) -> Tuple[np.ndarray, np.ndarray]:
    """The two predicted components of ``C = A ⊗ B`` for connected
    bipartite loop-free factors.

    Component 1 is ``{U_A ⊕ U_B} ∪ {W_A ⊕ W_B}`` ("same parts"),
    component 2 is ``{U_A ⊕ W_B} ∪ {W_A ⊕ U_B}`` ("crossed parts"):
    every product edge flips both coordinates' parts simultaneously, so
    the XOR of part bits is invariant.  Returns the two sorted vertex
    index arrays.
    """
    n_b = B.n
    part_a = A.part.astype(np.int8)
    part_b = B.part.astype(np.int8)
    # Vertex p = i * n_b + k has invariant part_a[i] XOR part_b[k].
    xor = (part_a[:, None] ^ part_b[None, :]).ravel()
    same = np.flatnonzero(xor == 0).astype(np.int64)
    crossed = np.flatnonzero(xor == 1).astype(np.int64)
    return same, crossed
