"""The ground-truth formulas written in GraphBLAS.

The paper (§I) argues these formulas "lend themselves nicely to an
implementation using GraphBLAS" -- Kronecker products, Hadamard
products, matrix powers, diagonal extraction and reductions are all
first-class GraphBLAS operations (``GrB_kronecker`` arrived in the
C API v1.3 the paper cites).  This module is that implementation: the
same quantities as :mod:`repro.kronecker.ground_truth`, but expressed
end-to-end in the :mod:`repro.gb` substrate's vocabulary, with no
direct numpy/scipy matrix algebra.

It exists for two reasons:

* fidelity -- it demonstrates the paper's claimed programming model on
  our GraphBLAS layer, operation for operation;
* verification -- tests assert it produces bit-identical results to
  the production (scipy-lowered) path, which exercises the substrate's
  semiring kernels on real workloads.

The production path in :mod:`~repro.kronecker.ground_truth` remains
the default (it lowers the same algebra straight onto scipy); use this
module when you want to read the formulas the way the paper writes
them.
"""

from __future__ import annotations

import numpy as np

from repro.gb import (
    GBMatrix,
    GBVector,
    diag,
    ewise_add,
    ewise_mult,
    kron,
    mxm,
    mxv,
    reduce_rows,
    reduce_scalar,
)
from repro.gb.semirings import PLUS, TIMES
from repro.graphs.graph import Graph
from repro.kronecker.assumptions import Assumption, BipartiteKronecker

__all__ = [
    "gb_degree_vector",
    "gb_walk2_vector",
    "gb_vertex_squares",
    "gb_edge_squares",
    "gb_product_vertex_squares",
    "gb_global_squares",
]


def _adjacency(graph: Graph) -> GBMatrix:
    return graph.gb()


def gb_degree_vector(graph: Graph) -> GBVector:
    """``d = A · 1`` as a row reduction (``GrB_reduce``)."""
    return reduce_rows(_adjacency(graph))


def gb_walk2_vector(graph: Graph) -> GBVector:
    """``w2 = A² · 1`` via one ``mxv`` on the degree vector."""
    A = _adjacency(graph)
    return mxv(A, gb_degree_vector(graph))


def gb_vertex_squares(graph: Graph) -> GBVector:
    """Def. 8 in GraphBLAS: ``s = ½(diag(A⁴) − d∘d − w2 + d)``.

    ``diag(A⁴)`` is computed as the row reduction of ``A² ∘ A²``
    (avoids forming ``A⁴``), i.e. ``reduce(ewise_mult(A², A²))``.
    """
    if graph.has_self_loops:
        raise ValueError("Def. 8 assumes a loop-free adjacency (paper §II-B)")
    A = _adjacency(graph)
    A2 = mxm(A, A)
    cw4 = reduce_rows(ewise_mult(A2, A2))
    d = gb_degree_vector(graph)
    w2 = gb_walk2_vector(graph)
    d_dense = d.to_dense()
    twice = cw4.to_dense() - d_dense * d_dense - w2.to_dense() + d_dense
    half, rem = np.divmod(twice.astype(np.int64), 2)
    assert not rem.any()
    return GBVector.from_dense(half)


def gb_edge_squares(graph: Graph) -> GBMatrix:
    """Def. 9 in GraphBLAS: ``◇ = (A³ ∘ A) − (d1ᵗ + 1dᵗ) ∘ A + A``.

    ``A³ ∘ A`` is computed with ``A`` itself as a structural *mask* on
    the final ``mxm`` -- the GraphBLAS idiom for "product restricted to
    existing edges", which never materializes the dense ``A³`` pattern.
    The rank-one corrections ``d1ᵗ ∘ A`` / ``1dᵗ ∘ A`` are built by
    scaling ``A``'s stored entries row- and column-wise.
    """
    if graph.has_self_loops:
        raise ValueError("Def. 9 assumes a loop-free adjacency (paper §II-B)")
    A = _adjacency(graph)
    A2 = mxm(A, A)
    w3_on_edges = mxm(A2, A, mask=A)  # A³ ∘ A via structural mask
    d = gb_degree_vector(graph).to_dense()
    rows, cols, _ = A.to_coo()
    # Fold "− (d1ᵗ + 1dᵗ) ∘ A + A" into one correction carrying
    # −(d_i + d_j − 1) per stored edge, then a single eWiseAdd.
    correction = GBMatrix.from_coo(rows, cols, -(d[rows] + d[cols] - 1), shape=A.shape)
    return ewise_add(w3_on_edges, correction, PLUS)


def gb_product_vertex_squares(bk: BipartiteKronecker) -> GBVector:
    """Thm. 3 / (sign-corrected) Thm. 4 expressed with ``GrB_kronecker``.

    Every term ``left ⊗ right`` is a Kronecker product of two
    factor-sized *diagonal* matrices (vectors lifted with ``diag``),
    combined with ``eWiseAdd`` -- exactly the shape the paper sketches
    for a "relatively simple GraphBLAS code".
    """
    a_graph, b_graph = bk.A, bk.B.graph
    s_a = gb_vertex_squares(a_graph).to_dense()
    s_b = gb_vertex_squares(b_graph).to_dense()
    d_a = gb_degree_vector(a_graph).to_dense()
    d_b = gb_degree_vector(b_graph).to_dense()
    w2_a = gb_walk2_vector(a_graph).to_dense()
    w2_b = gb_walk2_vector(b_graph).to_dense()
    cw4_b = 2 * s_b + d_b * d_b + w2_b - d_b
    if bk.assumption is Assumption.NON_BIPARTITE_FACTOR:
        cw4_m = 2 * s_a + d_a * d_a + w2_a - d_a
        d_m, w2_m = d_a, w2_a
    else:
        ones = np.ones_like(d_a)
        cw4_m = 2 * s_a + d_a * d_a + w2_a + 5 * d_a + ones
        d_m = d_a + ones
        w2_m = w2_a + 2 * d_a + ones
    terms = [
        (+1, cw4_m, cw4_b),
        (-1, d_m * d_m, d_b * d_b),
        (-1, w2_m, w2_b),
        (+1, d_m, d_b),
    ]
    acc = None
    for sign, left, right in terms:
        term = kron(diag(GBVector.from_dense(sign * left)), diag(GBVector.from_dense(right)), TIMES)
        acc = term if acc is None else ewise_add(acc, term, PLUS)
    twice = diag(acc).to_dense().astype(np.int64)
    half, rem = np.divmod(twice, 2)
    assert not rem.any()
    return GBVector.from_dense(half)


def gb_global_squares(bk: BipartiteKronecker) -> int:
    """Global product 4-cycle count: one final ``GrB_reduce``."""
    s = gb_product_vertex_squares(bk)
    total = int(reduce_scalar(s))
    count, rem = divmod(total, 4)
    assert rem == 0
    return count
