"""The ground-truth oracle: local queries from sublinear memory.

§I's cost model: with a Kronecker formula ``f(C) = Σ_s g_s(A) ⊗ h_s(B)``
a data structure of size ``O(|E_C|^{1/2})`` (i.e. factor-sized) yields
ground truth at query time.  :class:`GroundTruthOracle` is that data
structure: it precomputes :class:`~repro.kronecker.ground_truth.FactorStats`
for both factors once and then answers

* ``degree(p)``                            in O(1)
* ``squares_at_vertex(p)``  (Thm. 3/4)      in O(1)
* ``squares_at_edge(p, q)`` (Thm. 5/(ii))   in O(log d) (edge lookup)
* ``clustering_at_edge(p, q)`` (Def. 10)    in O(log d)
* ``global_squares()``                      in O(1) after setup

without ever materializing the product.  The scalar methods have
batched counterparts -- :meth:`~GroundTruthOracle.degrees`,
:meth:`~GroundTruthOracle.squares_at_vertices`,
:meth:`~GroundTruthOracle.squares_at_edges` -- that answer millions of
queries per second through the fused kernels
(:mod:`repro.kronecker.kernels`), with invalid-edge *masking* instead
of raise-per-query.  The benchmarks ``bench_groundtruth_vs_direct``
and ``bench_kernels`` quantify the gaps to direct counting and to the
scalar query loop.
"""

from __future__ import annotations

import numpy as np

from repro.kronecker import kernels
from repro.kronecker.assumptions import Assumption, BipartiteKronecker
from repro.kronecker.backends import KernelBackend, get_backend
from repro.kronecker.ground_truth import FactorStats, _vertex_terms
from repro.obs import get_metrics, get_tracer

__all__ = ["GroundTruthOracle"]


class GroundTruthOracle:
    """Per-vertex / per-edge ground truth for a bipartite product.

    Build once from a :class:`BipartiteKronecker`; queries then touch
    only factor-sized arrays.  ``backend`` selects the kernel backend
    for every batched query (``None`` resolves the process selection --
    scope/env/default); the resolved name is reported in
    :attr:`backend_name` and as the ``backend`` label of the
    ``oracle_queries_total`` metric.
    """

    def __init__(self, bk: BipartiteKronecker, backend: str | KernelBackend | None = None):
        self.bk = bk
        self._backend = get_backend(backend)
        self.backend_name = self._backend.name
        with get_tracer().span("oracle.setup", n=bk.n, m=bk.m) as sp:
            self.stats_a, self.stats_b = bk.factor_stats()
            self.n_b = bk.B.graph.n
            self._terms = _vertex_terms(self.stats_a, self.stats_b, bk.assumption)
            self._with_loops = bk.assumption is Assumption.SELF_LOOPS_FACTOR
            # Effective left-factor degree (d_A or d_A + 1).
            self._d_m = self.stats_a.d + (1 if self._with_loops else 0)
            # Stacked vertex-term matrices for the batched kernels.
            self._term_matrices = kernels.vertex_term_matrices(
                self.stats_a, self.stats_b, bk.assumption
            )
            sp.set(stored_entries=self.memory_footprint_entries())
        self._max_wing_cache: int | None = None
        # Bound once at setup: a no-op counter unless obs is enabled
        # when the oracle is built, so queries stay allocation-free.
        # Labeled per backend so the query series attribute which
        # implementation answered them.
        self._queries = get_metrics().counter(
            "oracle_queries_total", backend=self.backend_name
        )

    # ------------------------------------------------------------------
    # Artifact export hooks (repro.serve)
    # ------------------------------------------------------------------

    def artifact_state(self) -> tuple[FactorStats, FactorStats, np.ndarray, Assumption]:
        """Everything a persistent artifact needs to rebuild this oracle:
        ``(stats_a, stats_b, part_b, assumption)``.

        :func:`repro.serve.artifact.save_oracle` persists exactly this
        state; :meth:`from_factor_stats` consumes it.
        """
        return self.stats_a, self.stats_b, self.bk.B.part, self.bk.assumption

    @classmethod
    def from_factor_stats(
        cls,
        stats_a: FactorStats,
        stats_b: FactorStats,
        part_b: np.ndarray,
        assumption: Assumption,
        backend: str | KernelBackend | None = None,
    ) -> "GroundTruthOracle":
        """Rebuild an oracle from persisted factor statistics.

        The inverse of :meth:`artifact_state`: reconstructs the factor
        graphs from the stored adjacencies and pre-fills the product
        handle's statistics cache, so none of the sparse ``A²`` products
        behind :class:`~repro.kronecker.ground_truth.FactorStats` are
        recomputed.  Assumption-1 *validation* is also skipped -- the
        artifact was built from an already-validated product (and the
        checksum layer guards against tampering).

        The factor adjacencies are wrapped via
        :meth:`~repro.graphs.graph.Graph.from_canonical_csr` -- no
        re-canonicalization copy -- so when the stats come from
        ``load_oracle(..., mmap=True)`` the oracle's big arrays stay
        page-cache-backed memmaps shared across processes.
        """
        from repro.graphs.bipartite import BipartiteGraph
        from repro.graphs.graph import Graph

        A = Graph.from_canonical_csr(stats_a.adj)
        B = BipartiteGraph(Graph.from_canonical_csr(stats_b.adj), np.asarray(part_b, dtype=bool))
        bk = BipartiteKronecker(A, B, assumption)
        bk._stats_cache["stats"] = (stats_a, stats_b)
        return cls(bk, backend=backend)

    # ------------------------------------------------------------------
    # Index plumbing
    # ------------------------------------------------------------------

    def split(self, p: int) -> tuple[int, int]:
        """Product vertex -> factor pair ``(i, k)``."""
        if not 0 <= p < self.bk.n:
            raise IndexError(f"product vertex {p} out of range [0, {self.bk.n})")
        return divmod(p, self.n_b)

    def _split_batch(self, ps, name: str) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`split` with one range check for the batch."""
        ps = np.asarray(ps, dtype=np.int64)
        if ps.ndim != 1:
            raise ValueError(f"{name} must be a 1-D index array, got shape {ps.shape}")
        if ps.size and (int(ps.min()) < 0 or int(ps.max()) >= self.bk.n):
            bad = ps[(ps < 0) | (ps >= self.bk.n)][0]
            raise IndexError(f"product vertex {int(bad)} out of range [0, {self.bk.n})")
        return np.divmod(ps, self.n_b)

    # ------------------------------------------------------------------
    # Vertex queries
    # ------------------------------------------------------------------

    def degree(self, p: int) -> int:
        """Degree of product vertex ``p``: ``d_M(i) * d_B(k)``."""
        self._queries.inc()
        i, k = self.split(p)
        return int(self._d_m[i] * self.stats_b.d[k])

    def squares_at_vertex(self, p: int) -> int:
        """Ground-truth ``s_C(p)`` (Thm. 3 / sign-corrected Thm. 4)."""
        self._queries.inc()
        i, k = self.split(p)
        acc = 0
        for sign, left, right in self._terms:
            acc += sign * int(left[i]) * int(right[k])
        half, rem = divmod(acc, 2)
        assert rem == 0
        return half

    # ------------------------------------------------------------------
    # Batched vertex queries (fused kernels)
    # ------------------------------------------------------------------

    def degrees(self, ps) -> np.ndarray:
        """Batched :meth:`degree`: one vectorized pass over ``ps``.

        Raises ``IndexError`` if any index is out of range (checked once
        for the whole batch).
        """
        i, k = self._split_batch(ps, "ps")
        self._queries.inc(i.size)
        return self._backend.degrees(self._d_m, self.stats_b.d, i, k)

    def squares_at_vertices(self, ps) -> np.ndarray:
        """Batched :meth:`squares_at_vertex` via the fused vertex kernel.

        Millions of queries per second instead of one per Python call;
        values are identical to the scalar loop (exact int64 math).
        """
        ps = np.asarray(ps, dtype=np.int64)
        if ps.ndim != 1:
            raise ValueError(f"ps must be a 1-D index array, got shape {ps.shape}")
        self._queries.inc(ps.size)
        return kernels.vertex_squares_codes(
            self.stats_a,
            self.stats_b,
            self.bk.assumption,
            ps,
            term_matrices=self._term_matrices,
            backend=self._backend,
        )

    # ------------------------------------------------------------------
    # Edge queries
    # ------------------------------------------------------------------

    def _factor_edge_stats(self, stats: FactorStats, i: int, j: int):
        """``(is_edge, diamond_ij)`` for a factor edge lookup."""
        row = stats.adj.indices[stats.adj.indptr[i] : stats.adj.indptr[i + 1]]
        pos = np.searchsorted(row, j)
        if pos >= row.size or row[pos] != j:
            return False, 0
        drow = stats.diamond.indices[stats.diamond.indptr[i] : stats.diamond.indptr[i + 1]]
        dpos = np.searchsorted(drow, j)
        if dpos < drow.size and drow[dpos] == j:
            return True, int(stats.diamond.data[stats.diamond.indptr[i] + dpos])
        return True, 0

    def has_edge(self, p: int, q: int) -> bool:
        """Whether ``(p, q)`` is an edge of the product."""
        self._queries.inc()
        i, k = self.split(p)
        j, ell = self.split(q)
        b_edge, _ = self._factor_edge_stats(self.stats_b, k, ell)
        if not b_edge:
            return False
        if self._with_loops and i == j:
            return True
        a_edge, _ = self._factor_edge_stats(self.stats_a, i, j)
        return a_edge

    def squares_at_edge(self, p: int, q: int) -> int:
        """Ground-truth ``◇_C(p, q)`` via the point-wise formulas.

        Assumption 1(i) (Thm. 5's expansion)::

            ◇_pq = 1 + (◇_ij + d_i + d_j - 1)(◇_kl + d_k + d_l - 1)
                     - d_i d_k - d_j d_l

        Assumption 1(ii), cross edges (``(i,j) ∈ E_A``)::

            ◇_pq = 1 + (◇_ij + d_i + d_j + 2)(◇_kl + d_k + d_l - 1)
                     - (d_i + 1) d_k - (d_j + 1) d_l

        Assumption 1(ii), loop-block edges (``i = j``)::

            ◇_pq = 1 + (3 d_i + 1)(◇_kl + d_k + d_l - 1)
                     - (d_i + 1)(d_k + d_l)

        Raises ``ValueError`` when ``(p, q)`` is not a product edge.
        """
        self._queries.inc()
        i, k = self.split(p)
        j, ell = self.split(q)
        b_edge, dia_b = self._factor_edge_stats(self.stats_b, k, ell)
        if not b_edge:
            raise ValueError(f"({p}, {q}) is not an edge of the product (no B edge ({k}, {ell}))")
        d_k, d_l = int(self.stats_b.d[k]), int(self.stats_b.d[ell])
        w3_b = dia_b + d_k + d_l - 1
        d_i, d_j = int(self.stats_a.d[i]), int(self.stats_a.d[j])
        if self._with_loops and i == j:
            return 1 + (3 * d_i + 1) * w3_b - (d_i + 1) * (d_k + d_l)
        a_edge, dia_a = self._factor_edge_stats(self.stats_a, i, j)
        if not a_edge:
            raise ValueError(f"({p}, {q}) is not an edge of the product (no A edge ({i}, {j}))")
        if self._with_loops:
            return (
                1
                + (dia_a + d_i + d_j + 2) * w3_b
                - (d_i + 1) * d_k
                - (d_j + 1) * d_l
            )
        return 1 + (dia_a + d_i + d_j - 1) * w3_b - d_i * d_k - d_j * d_l

    def clustering_at_edge(self, p: int, q: int) -> float:
        """Ground-truth ``Γ_C(p, q)`` (Def. 10).

        Raises on non-edges and on edges with an endpoint of degree 1
        (outside Def. 10's domain).
        """
        self._queries.inc()
        dia = self.squares_at_edge(p, q)
        dp, dq = self.degree(p), self.degree(q)
        if dp < 2 or dq < 2:
            raise ValueError("clustering coefficient needs both endpoint degrees >= 2")
        return dia / ((dp - 1) * (dq - 1))

    # ------------------------------------------------------------------
    # Batched edge queries (fused kernels)
    # ------------------------------------------------------------------

    def has_edges(self, ps, qs) -> np.ndarray:
        """Batched :meth:`has_edge`: boolean mask per ``(p, q)`` pair."""
        i, k = self._split_batch(ps, "ps")
        j, ell = self._split_batch(qs, "qs")
        if i.shape != j.shape:
            raise ValueError(f"ps and qs must match in shape: {i.shape} vs {j.shape}")
        self._queries.inc(i.size)
        _, valid = kernels.edge_squares_batch(
            self.stats_a, self.stats_b, self.bk.assumption, i, j, k, ell,
            backend=self._backend,
        )
        return valid

    def squares_at_edges(self, ps, qs, on_invalid: str = "raise") -> np.ndarray:
        """Batched :meth:`squares_at_edge` via the fused edge kernel.

        ``on_invalid`` controls non-edges in the batch:

        * ``"raise"`` (default, matching the scalar method): raise
          ``ValueError`` naming the first non-edge pair;
        * ``"mask"``: report ``-1`` at non-edge slots instead, so
          millions of speculative queries cost one vectorized pass
          (counts are never negative, so the sentinel is unambiguous).
        """
        if on_invalid not in ("raise", "mask"):
            raise ValueError(f"on_invalid must be 'raise' or 'mask', got {on_invalid!r}")
        i, k = self._split_batch(ps, "ps")
        j, ell = self._split_batch(qs, "qs")
        if i.shape != j.shape:
            raise ValueError(f"ps and qs must match in shape: {i.shape} vs {j.shape}")
        self._queries.inc(i.size)
        values, valid = kernels.edge_squares_batch(
            self.stats_a, self.stats_b, self.bk.assumption, i, j, k, ell,
            backend=self._backend,
        )
        if valid.all():
            return values
        if on_invalid == "raise":
            bad = int(np.flatnonzero(~valid)[0])
            ps = np.asarray(ps, dtype=np.int64)
            qs = np.asarray(qs, dtype=np.int64)
            raise ValueError(
                f"({int(ps[bad])}, {int(qs[bad])}) is not an edge of the product"
            )
        return np.where(valid, values, -1)

    def wings_at_edges(self, ps, qs, on_invalid: str = "raise") -> np.ndarray:
        """Batched Rem. 1 wing upper bounds per product edge.

        The wing (bitruss) number of an edge never exceeds its initial
        butterfly support, so the answer *is* the exact Thm. 5 /
        derived-1(ii) support -- bit-identical to
        :meth:`squares_at_edges` -- reported under the wing-query
        contract: ``on_invalid="raise"`` names the first non-edge pair,
        ``"mask"`` reports the ``-1`` sentinel there (supports are
        never negative).  Support-0 answers certify wing number 0.
        """
        if on_invalid not in ("raise", "mask"):
            raise ValueError(f"on_invalid must be 'raise' or 'mask', got {on_invalid!r}")
        i, k = self._split_batch(ps, "ps")
        j, ell = self._split_batch(qs, "qs")
        if i.shape != j.shape:
            raise ValueError(f"ps and qs must match in shape: {i.shape} vs {j.shape}")
        self._queries.inc(i.size)
        values, valid = kernels.edge_squares_batch(
            self.stats_a, self.stats_b, self.bk.assumption, i, j, k, ell,
            backend=self._backend,
        )
        if valid.all():
            return values
        if on_invalid == "raise":
            bad = int(np.flatnonzero(~valid)[0])
            ps = np.asarray(ps, dtype=np.int64)
            qs = np.asarray(qs, dtype=np.int64)
            raise ValueError(
                f"({int(ps[bad])}, {int(qs[bad])}) is not an edge of the product"
            )
        return self._backend.wing_bounds_fuse(values, valid)

    def max_wing_bound(self) -> int:
        """Scalar Rem. 1 bound: the product's maximum wing number never
        exceeds its maximum edge support.

        Streams every product edge (effective ``M`` entries crossed
        with ``B`` entries) through the fused edge kernel in bounded
        blocks and reduces with the backend's max primitive -- O(|E_C|)
        work, O(block) memory, memoized after the first call.
        """
        if self._max_wing_cache is None:
            self._queries.inc()
            idx_a = self.stats_a.edge_index
            idx_b = self.stats_b.edge_index
            m_rows, m_cols = idx_a.rows, idx_a.cols
            if self._with_loops:
                diag = np.arange(self.stats_a.n, dtype=np.int64)
                m_rows = np.concatenate((m_rows, diag))
                m_cols = np.concatenate((m_cols, diag))
            best = 0
            nb = idx_b.rows.size
            if nb and m_rows.size:
                per = max(1, (1 << 18) // nb)
                for s in range(0, m_rows.size, per):
                    e = min(s + per, m_rows.size)
                    i = np.repeat(m_rows[s:e], nb)
                    j = np.repeat(m_cols[s:e], nb)
                    k = np.tile(idx_b.rows, e - s)
                    ell = np.tile(idx_b.cols, e - s)
                    values, valid = kernels.edge_squares_batch(
                        self.stats_a, self.stats_b, self.bk.assumption,
                        i, j, k, ell, backend=self._backend,
                    )
                    best = max(best, self._backend.max_wing_reduce(values, valid))
            self._max_wing_cache = best
        return self._max_wing_cache

    def clustering_at_edges(self, ps, qs) -> np.ndarray:
        """Batched :meth:`clustering_at_edge` with NaN masking.

        Returns float64 ``Γ_C`` per pair; ``NaN`` where ``(p, q)`` is
        not a product edge or an endpoint degree is below 2 (outside
        Def. 10's domain) -- mask semantics instead of the scalar
        method's raise, matching :meth:`squares_at_edges`'s
        ``on_invalid="mask"`` contract.  This is the serve layer's
        clustering path.
        """
        dia = self.squares_at_edges(ps, qs, on_invalid="mask")
        dp = self.degrees(ps)
        dq = self.degrees(qs)
        return self._backend.edge_clustering(dia, dp, dq)

    # ------------------------------------------------------------------
    # Global queries
    # ------------------------------------------------------------------

    def global_squares(self) -> int:
        """Total 4-cycles of the product (sublinear)."""
        self._queries.inc()
        acc = 0
        for sign, left, right in self._terms:
            acc += sign * int(left.sum()) * int(right.sum())
        return acc // 2 // 4

    def memory_footprint_entries(self) -> int:
        """Stored entries across all factor statistics.

        The §I claim is ``O(|E_C|^{1/2})`` storage; this reports the
        actual count so benches can print measured-vs-claimed.
        """
        per_factor = 0
        for stats in (self.stats_a, self.stats_b):
            per_factor += 4 * stats.n  # d, w2, s, cw4
            per_factor += stats.diamond.nnz + stats.adj.nnz
        return per_factor

    def memory_footprint_bytes(self) -> int:
        """Actual dtype-aware bytes held by the oracle.

        Unlike :meth:`memory_footprint_entries` (the paper's abstract
        entry count) this sums ``.nbytes`` over every stored array:
        both factors' statistics *and* derived caches that have been
        materialized (the :class:`~repro.kronecker.kernels.EdgeIndex`
        per factor), plus the oracle's own precomputed arrays --
        so benches report measured-vs-claimed storage honestly.
        """
        total = 0
        for stats in (self.stats_a, self.stats_b):
            total += sum(a.nbytes for a in kernels.stats_arrays(stats))
        total += self._d_m.nbytes
        total += sum(m.nbytes for m in self._term_matrices)
        return total
