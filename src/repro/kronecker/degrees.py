"""Ground-truth degree structure of Kronecker products.

Degrees multiply: ``d_C(γ(i,k)) = d_M(i) · d_B(k)``, so the product's
entire degree *distribution* is the multiplicative convolution of the
factor histograms -- computable exactly in factor-sized time.  This
module provides that convolution plus the quantities the paper calls
out when discussing generator quality (§I):

* exact degree histogram / max degree / mean degree of ``C``,
* the "no large prime degrees" quirk quantified exactly (every
  product degree factors as ``d_i · d_k``, so primes above
  ``max(d_M) ·`` 1-degree-availability are impossible),
* a heavy-tail slope estimate on the exact histogram.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.degree import _is_prime
from repro.kronecker.assumptions import BipartiteKronecker

__all__ = ["product_degree_histogram", "ProductDegreeSummary", "product_degree_summary"]


def product_degree_histogram(bk: BipartiteKronecker):
    """Exact ``(degrees, counts)`` of the product.

    Multiplicative convolution of the factor histograms: if ``n_a(x)``
    vertices of ``M`` have degree ``x`` and ``n_b(y)`` of ``B`` have
    degree ``y``, then ``n_a(x) n_b(y)`` product vertices have degree
    ``x·y``.  Factor-sized work (product of the numbers of *distinct*
    degrees), independent of ``n_C``.
    """
    d_m = bk.M.degrees()
    d_b = bk.B.graph.degrees()
    vals_m, counts_m = np.unique(d_m, return_counts=True)
    vals_b, counts_b = np.unique(d_b, return_counts=True)
    prod_vals = np.multiply.outer(vals_m, vals_b).ravel()
    prod_counts = np.multiply.outer(counts_m, counts_b).ravel()
    order = np.argsort(prod_vals, kind="stable")
    prod_vals = prod_vals[order]
    prod_counts = prod_counts[order]
    # Merge equal degree values.
    boundaries = np.flatnonzero(np.diff(prod_vals)) + 1
    starts = np.concatenate(([0], boundaries))
    degrees = prod_vals[starts]
    counts = np.add.reduceat(prod_counts, starts)
    return degrees.astype(np.int64), counts.astype(np.int64)


@dataclass(frozen=True)
class ProductDegreeSummary:
    """Exact degree summary of a product, from factors only."""

    n: int
    d_min: int
    d_max: int
    d_mean: float
    distinct_degrees: int
    prime_degrees_above_threshold: int
    threshold: int

    def format(self) -> str:
        return (
            f"n={self.n:,} d_min={self.d_min} d_max={self.d_max} "
            f"d_mean={self.d_mean:.3f} distinct={self.distinct_degrees} "
            f"primes>{self.threshold}: {self.prime_degrees_above_threshold}"
        )


def product_degree_summary(bk: BipartiteKronecker, prime_threshold: int = 10) -> ProductDegreeSummary:
    """Summarise the exact product degree distribution.

    ``prime_degrees_above_threshold`` counts *vertices* whose degree is
    a prime exceeding ``prime_threshold`` -- the paper's §I observation
    is that this is (near-)zero for products, unlike real graphs.  It
    is not identically zero: a degree-1 factor vertex passes the other
    factor's degree through unfactored.
    """
    degrees, counts = product_degree_histogram(bk)
    n = int(counts.sum())
    mean = float((degrees * counts).sum() / n) if n else 0.0
    big = degrees > prime_threshold
    prime_count = 0
    if np.any(big):
        primes = _is_prime(degrees[big])
        prime_count = int(counts[big][primes].sum())
    return ProductDegreeSummary(
        n=n,
        d_min=int(degrees.min()) if degrees.size else 0,
        d_max=int(degrees.max()) if degrees.size else 0,
        d_mean=mean,
        distinct_degrees=int(degrees.size),
        prime_degrees_above_threshold=prime_count,
        threshold=prime_threshold,
    )
