"""Spectral ground truth for Kronecker products.

The paper's §I inventory of prior Kronecker ground-truth results
includes *eigenvalues* ([12], [20], [28], [29]): the spectrum of
``A ⊗ B`` is the multiset of pairwise products
``{ λ_i(A) · μ_j(B) }`` -- immediate from the mixed-product property
applied to eigenvector Kronecker products.  This module supplies those
formulas for our products:

* :func:`product_spectrum` -- the full exact product spectrum from
  factor spectra (dense factor eigendecompositions; factors are small
  by construction);
* :func:`product_spectral_radius` -- ``ρ(C) = ρ(M) ρ(B)`` for the
  nonnegative symmetric adjacencies in play (Perron-Frobenius);
* :func:`bipartite_spectrum_symmetry` -- a structural check: a graph is
  bipartite iff its adjacency spectrum is symmetric about zero, which
  ties the spectral and combinatorial bipartiteness stories together
  (and gives the tests a third, independent bipartiteness oracle).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.kronecker.assumptions import BipartiteKronecker

__all__ = [
    "adjacency_spectrum",
    "product_spectrum",
    "product_spectral_radius",
    "bipartite_spectrum_symmetry",
]


def adjacency_spectrum(graph: Graph) -> np.ndarray:
    """Eigenvalues of the adjacency matrix, descending.

    Dense symmetric eigensolve -- intended for *factors* (the paper's
    factors have hundreds of vertices; ``eigh`` at that size is
    milliseconds).  Raises for graphs above 5000 vertices to stop
    accidental product-sized calls.
    """
    if graph.n > 5000:
        raise ValueError(
            f"adjacency_spectrum is a factor-scale tool (n={graph.n}); "
            "use product_spectrum to get product eigenvalues from factors"
        )
    if graph.n == 0:
        return np.empty(0)
    values = np.linalg.eigvalsh(graph.adj.toarray().astype(np.float64))
    return values[::-1]


def product_spectrum(bk: BipartiteKronecker) -> np.ndarray:
    """Exact eigenvalues of ``C = M ⊗ B``, descending.

    ``eig(M ⊗ B) = { λ μ : λ ∈ eig(M), μ ∈ eig(B) }`` with
    multiplicities -- the outer product of the factor spectra,
    flattened and sorted.  Length ``n_C``, computed in factor-cubed
    time.
    """
    lam = adjacency_spectrum(bk.M)
    mu = adjacency_spectrum(bk.B.graph)
    return np.sort(np.multiply.outer(lam, mu).ravel())[::-1]


def product_spectral_radius(bk: BipartiteKronecker) -> float:
    """``ρ(C) = ρ(M) · ρ(B)``.

    Both factors are nonnegative symmetric, so the spectral radius is
    the top eigenvalue (Perron-Frobenius) and radii multiply.
    """
    lam = adjacency_spectrum(bk.M)
    mu = adjacency_spectrum(bk.B.graph)
    return float(lam[0] * mu[0])


def bipartite_spectrum_symmetry(graph: Graph, tol: float = 1e-8) -> bool:
    """True iff the adjacency spectrum is symmetric about zero.

    For undirected graphs this is equivalent to bipartiteness; the
    tests use it as an eigenvalue-based referee for
    :func:`repro.graphs.bipartite.is_bipartite` and for the product
    bipartiteness theorems.
    """
    values = adjacency_spectrum(graph)
    return bool(np.allclose(values, -values[::-1], atol=tol))
