"""Ground-truth 4-cycle formulas for bipartite Kronecker products.

This module implements §III-B.  Everything is computed from per-factor
statistics (:class:`FactorStats`) of size ``O(|E_A| + |E_B|)``; the
product itself is never touched.  Cost model (§I): local vertex counts
in ``O(n_C)`` output time, local edge counts in ``O(|E_C|)`` output
time, global counts in ``O(|E_A| + |E_B|)`` -- *sublinear* in the
product.

Formulas (0-based, loop-free factors; ``d`` degree, ``w2 = A² 1``,
``s`` vertex squares, ``◇`` edge squares, ``cw4 = diag(A⁴) =
2s + d² + w2 - d``):

**Thm. 3** (Assumption 1(i), ``C = A ⊗ B``)::

    s_C = (cw4_A ⊗ cw4_B - d_A² ⊗ d_B² - w2_A ⊗ w2_B + d_A ⊗ d_B) / 2

**Thm. 4** (Assumption 1(ii), ``C = (A + I_A) ⊗ B``, ``A`` bipartite)::

    s_C = ( (2s_A + d_A² + w2_A + 5 d_A + 1) ⊗ cw4_B
            - (d_A + 1)² ⊗ d_B²
            - (w2_A + 2 d_A + 1) ⊗ w2_B
            + (d_A + 1) ⊗ d_B ) / 2

.. note::
   The paper's displayed Thm. 4 carries a sign typo: it shows
   ``- (d_A + 1) ⊗ d_B`` and ``+ (d_A² + 2d_A + 1) ⊗ d_B²``, which
   contradicts Def. 8 (``s = (diag(C⁴) - d∘d - w2 + d)/2``).  We
   implement the Def.-8-consistent signs above; the property tests
   confirm them against brute-force counting on materialized products
   (and refute the printed signs).  See DESIGN.md "Paper errata".

**Thm. 5** (Assumption 1(i) edges)::

    ◇_C = C + W3_A ⊗ W3_B
            - (d_A 1ᵗ ∘ A) ⊗ (d_B 1ᵗ ∘ B)
            - (1 d_Aᵗ ∘ A) ⊗ (1 d_Bᵗ ∘ B)

with ``W3_X = X³ ∘ X = ◇_X + (d 1ᵗ + 1 dᵗ) ∘ X - X``.

**Derived Assumption-1(ii) edge formula** (the paper asserts §III-B2
covers both assumptions but prints only Thm. 5; we derive the (ii)
case, using ``(A+I)³ ∘ (A+I) = A³∘A + 3A + 3·Diag(d_A) + I`` for
bipartite loop-free ``A``)::

    ◇_C = (A+I) ⊗ B + [W3_A + 3A + 3·Diag(d_A) + I] ⊗ W3_B
            - ((d_A+1) 1ᵗ ∘ (A+I)) ⊗ (d_B 1ᵗ ∘ B)
            - (1 (d_A+1)ᵗ ∘ (A+I)) ⊗ (1 d_Bᵗ ∘ B)

Point-wise versions of all four power the O(1)-per-query oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np
import scipy.sparse as sp

from repro.analytics.fourcycles import (
    closed_walks4,
    edge_squares_matrix,
    vertex_squares_matrix,
)
from repro.graphs.graph import Graph
from repro.kronecker import kernels
from repro.kronecker.assumptions import Assumption, BipartiteKronecker
from repro.kronecker.kernels import EdgeIndex, vertex_terms as _vertex_terms

__all__ = [
    "FactorStats",
    "vertex_squares_product",
    "vertex_squares_product_reference",
    "edge_squares_product",
    "edge_squares_product_reference",
    "global_squares_product",
    "squares_if_square_free_factors",
]


@dataclass(frozen=True)
class FactorStats:
    """Sublinear-size statistics of one loop-free factor.

    All the paper's formulas consume factors only through these fields;
    computing them costs one sparse ``A²`` product
    (``O(Σ_i d_i²)`` work) and ``O(|E|)`` memory.
    """

    n: int
    d: np.ndarray          #: degree vector ``A 1``
    w2: np.ndarray         #: two-walk vector ``A² 1``
    s: np.ndarray          #: vertex square counts (Def. 8)
    cw4: np.ndarray        #: ``diag(A⁴) = 2s + d² + w2 - d``
    diamond: sp.csr_array  #: edge square counts ``◇`` (Def. 9), adjacency pattern
    adj: sp.csr_array      #: the adjacency itself (for edge-aligned products)

    @classmethod
    def from_graph(cls, graph: Graph) -> "FactorStats":
        if graph.has_self_loops:
            raise ValueError(
                "FactorStats requires a loop-free factor (paper §II-B); "
                "Assumption 1(ii)'s +I_A is handled by the formula layer, "
                "not by the factor"
            )
        d = graph.degrees().astype(np.int64)
        w2 = np.asarray(graph.adj @ d).ravel().astype(np.int64)
        s = vertex_squares_matrix(graph)
        cw4 = closed_walks4(graph)
        diamond = edge_squares_matrix(graph)
        return cls(n=graph.n, d=d, w2=w2, s=s, cw4=cw4, diamond=diamond, adj=graph.adj)

    def global_squares(self) -> int:
        """Total 4-cycles in the factor: ``Σ s / 4``."""
        total, rem = divmod(int(self.s.sum()), 4)
        assert rem == 0
        return total

    @cached_property
    def edge_index(self) -> EdgeIndex:
        """Derived-quantity cache: sorted edge keys plus edge-aligned
        ``◇``/``W³``/degree arrays (:class:`~repro.kronecker.kernels.EdgeIndex`).

        Memoized on the instance (``cached_property`` writes straight
        into ``__dict__``, bypassing the frozen-dataclass guard), so
        repeated formula, oracle, and streaming calls stop recomputing
        the same sparse intermediates.
        """
        return EdgeIndex.from_stats(self)


# ---------------------------------------------------------------------------
# Vertex formulas (Thms. 3 and 4)
# ---------------------------------------------------------------------------


def vertex_squares_product(bk: BipartiteKronecker) -> np.ndarray:
    """Ground-truth vertex 4-cycle counts ``s_C`` (Thm. 3 / Thm. 4).

    Dense int64 vector of length ``n_C = n_A * n_B``; vertex
    ``p = γ(i, k)`` is at position ``i * n_B + k``.
    """
    stats_a, stats_b = bk.factor_stats()
    return _vertex_squares_from_stats(stats_a, stats_b, bk.assumption)


def _vertex_squares_from_stats(
    stats_a: FactorStats, stats_b: FactorStats, assumption: Assumption
) -> np.ndarray:
    """Fused evaluation (:func:`~repro.kronecker.kernels.vertex_squares_grid`):
    one stacked integer matmul instead of four summed ``np.kron`` terms."""
    return kernels.vertex_squares_grid(stats_a, stats_b, assumption)


def _vertex_squares_from_stats_kron(
    stats_a: FactorStats, stats_b: FactorStats, assumption: Assumption
) -> np.ndarray:
    """Legacy term-by-term ``np.kron`` evaluation.

    Kept as the independent reference implementation the property tests
    and ``bench_kernels`` compare the fused kernel against (bit-identical
    by construction: same int64 terms, different evaluation order).
    """
    acc = np.zeros(stats_a.n * stats_b.n, dtype=np.int64)
    for sign, left, right in _vertex_terms(stats_a, stats_b, assumption):
        acc += sign * np.kron(left, right)
    half, rem = np.divmod(acc, 2)
    assert not rem.any(), "vertex square formula must yield even closed-walk excess"
    return half


def global_squares_product(bk: BipartiteKronecker) -> int:
    """Ground-truth global 4-cycle count of ``G_C`` -- **sublinear**.

    Uses ``Σ (x ⊗ y) = (Σ x)(Σ y)``: only factor-sized reductions are
    formed, never the ``n_C``-length vector.  This is the §I claim that
    "global scalar quantities are computed sublinearly".
    """
    stats_a, stats_b = bk.factor_stats()
    acc = 0
    for sign, left, right in _vertex_terms(stats_a, stats_b, bk.assumption):
        acc += sign * int(left.sum()) * int(right.sum())
    half, rem = divmod(acc, 2)
    assert rem == 0
    total, rem4 = divmod(half, 4)
    assert rem4 == 0, "sum of vertex square counts must be divisible by 4"
    return total


# ---------------------------------------------------------------------------
# Edge formulas (Thm. 5 and the derived 1(ii) variant)
# ---------------------------------------------------------------------------


def _w3_on_edges(stats: FactorStats) -> sp.csr_array:
    """``X³ ∘ X = ◇ + (d 1ᵗ + 1 dᵗ) ∘ X - X`` from stored statistics.

    Served from the :class:`~repro.kronecker.kernels.EdgeIndex` cache:
    the edge-aligned ``W³`` values already exist, so this is one sparse
    assembly instead of a sparse addition per call.
    """
    idx = stats.edge_index
    return sp.csr_array(
        sp.coo_array((idx.w3, (idx.rows, idx.cols)), shape=stats.adj.shape)
    )


def _edge_terms(stats_a: FactorStats, stats_b: FactorStats, assumption: Assumption):
    """``[(sign, left_matrix, right_matrix), ...]`` with
    ``◇_C = Σ sign * left ⊗ right``."""
    a, b = stats_a, stats_b
    coo_a = a.adj.tocoo()
    coo_b = b.adj.tocoo()
    w3_b = _w3_on_edges(b)
    drow_b = sp.csr_array(
        sp.coo_array((b.d[coo_b.row], (coo_b.row, coo_b.col)), shape=b.adj.shape)
    )
    dcol_b = sp.csr_array(
        sp.coo_array((b.d[coo_b.col], (coo_b.row, coo_b.col)), shape=b.adj.shape)
    )
    if assumption is Assumption.NON_BIPARTITE_FACTOR:
        w3_a = _w3_on_edges(a)
        drow_a = sp.csr_array(
            sp.coo_array((a.d[coo_a.row], (coo_a.row, coo_a.col)), shape=a.adj.shape)
        )
        dcol_a = sp.csr_array(
            sp.coo_array((a.d[coo_a.col], (coo_a.row, coo_a.col)), shape=a.adj.shape)
        )
        return [
            (+1, sp.csr_array(a.adj, dtype=np.int64), sp.csr_array(b.adj, dtype=np.int64)),
            (+1, w3_a, w3_b),
            (-1, drow_a, drow_b),
            (-1, dcol_a, dcol_b),
        ]
    if assumption is Assumption.SELF_LOOPS_FACTOR:
        eye = sp.identity(a.n, dtype=np.int64, format="csr")
        m_adj = sp.csr_array(a.adj + eye)
        # (A+I)³ ∘ (A+I) = A³∘A + 3A + 3·Diag(d) + I   (A bipartite, loop-free)
        w3_m = sp.csr_array(
            _w3_on_edges(a) + 3 * a.adj + 3 * sp.diags_array(a.d, format="csr", dtype=None) + eye
        )
        coo_m = m_adj.tocoo()
        d_m = a.d + 1
        drow_m = sp.csr_array(
            sp.coo_array((d_m[coo_m.row], (coo_m.row, coo_m.col)), shape=m_adj.shape)
        )
        dcol_m = sp.csr_array(
            sp.coo_array((d_m[coo_m.col], (coo_m.row, coo_m.col)), shape=m_adj.shape)
        )
        return [
            (+1, m_adj, sp.csr_array(b.adj, dtype=np.int64)),
            (+1, w3_m, w3_b),
            (-1, drow_m, drow_b),
            (-1, dcol_m, dcol_b),
        ]
    raise ValueError(f"unknown assumption {assumption!r}")  # pragma: no cover


def edge_squares_product(bk: BipartiteKronecker) -> sp.csr_array:
    """Ground-truth edge 4-cycle counts ``◇_C`` (Thm. 5 / derived (ii)).

    Sparse symmetric matrix whose pattern equals the product adjacency
    (explicit zeros kept for square-free edges).  Memory and time are
    ``O(|E_C|)`` -- linear in the product's edges, computed *without*
    ever forming ``C³``.

    Fused evaluation
    (:func:`~repro.kronecker.kernels.product_edge_squares_csr`): the
    point-wise coefficient form is applied directly on the product's
    entry list, so no intermediate ``sp.kron`` term and no re-anchoring
    extraction is ever formed -- one value-block allocation instead of
    ~5 full-size intermediates, values bit-identical to the legacy
    term-by-term path (kept as :func:`_edge_squares_product_kron`).
    """
    stats_a, stats_b = bk.factor_stats()
    m_coo = bk.M.adj.tocoo()
    return kernels.product_edge_squares_csr(
        stats_a,
        stats_b,
        bk.assumption,
        m_coo.row.astype(np.int64),
        m_coo.col.astype(np.int64),
    )


def _edge_squares_product_kron(bk: BipartiteKronecker) -> sp.csr_array:
    """Legacy ``sp.kron`` term-sum evaluation of ``◇_C``.

    Materializes the four Kronecker terms of Thm. 5 (or the derived
    1(ii) set), sums them, and re-anchors onto the product adjacency
    pattern.  Kept as the independent reference the property tests and
    ``bench_kernels`` compare :func:`edge_squares_product` against.
    """
    stats_a, stats_b = bk.factor_stats()
    terms = _edge_terms(stats_a, stats_b, bk.assumption)
    acc = None
    for sign, left, right in terms:
        part = sp.kron(left, right, format="csr")
        acc = sign * part if acc is None else acc + sign * part
    acc = sp.csr_array(acc)
    # Re-anchor onto the product adjacency pattern: scipy's sparse
    # addition may prune entries whose terms cancel to zero, but the
    # contract is "pattern equals the product adjacency, square-free
    # edges stored as explicit zeros".
    pattern = sp.kron(bk.M.adj, bk.B.graph.adj, format="coo")
    if pattern.nnz == 0:
        return sp.csr_array(pattern.shape, dtype=np.int64)
    vals = np.asarray(acc[pattern.row, pattern.col]).ravel()
    return sp.csr_array(
        sp.coo_array((vals, (pattern.row, pattern.col)), shape=pattern.shape)
    )


# ---------------------------------------------------------------------------
# Public reference-path hooks
# ---------------------------------------------------------------------------


def vertex_squares_product_reference(bk: BipartiteKronecker) -> np.ndarray:
    """``s_C`` via the legacy term-by-term ``np.kron`` path.

    Public hook for the differential verifier
    (:mod:`repro.refcheck.differ`): same closed forms as
    :func:`vertex_squares_product` but a disjoint evaluation route, so
    fused-kernel regressions show up as a divergence between the two.
    """
    stats_a, stats_b = bk.factor_stats()
    return _vertex_squares_from_stats_kron(stats_a, stats_b, bk.assumption)


def edge_squares_product_reference(bk: BipartiteKronecker) -> sp.csr_array:
    """``◇_C`` via the legacy ``sp.kron`` term-sum path.

    Public hook for the differential verifier; see
    :func:`vertex_squares_product_reference`.
    """
    return _edge_squares_product_kron(bk)


# ---------------------------------------------------------------------------
# Remark 1: products always have 4-cycles
# ---------------------------------------------------------------------------


def squares_if_square_free_factors(A: Graph, B: Graph) -> int:
    """Global square count of ``A ⊗ B`` when both factors are
    square-free (Rem. 1's specialization of Thm. 3).

    With ``s_A = s_B = 0`` the formula still yields a positive count as
    soon as both factors have a vertex of degree >= 2 -- the paper's
    observation that non-trivial products *always* contain 4-cycles.
    Raises if a factor does have squares (use the full formula then).
    """
    stats_a = FactorStats.from_graph(A)
    stats_b = FactorStats.from_graph(B)
    if stats_a.s.any() or stats_b.s.any():
        raise ValueError("factors are not square-free; use global_squares_product")
    acc = 0
    for sign, left, right in _vertex_terms(stats_a, stats_b, Assumption.NON_BIPARTITE_FACTOR):
        acc += sign * int(left.sum()) * int(right.sum())
    return acc // 2 // 4
