"""The paper's core contribution: bipartite Kronecker generation with
ground-truth 4-cycle and density statistics.

Layer map (paper section in parentheses):

* :mod:`~repro.kronecker.indexing` -- product/factor index maps (Def. 4).
* :mod:`~repro.kronecker.product` -- materialized and implicit
  Kronecker products, multi-factor powers (Def. 4).
* :mod:`~repro.kronecker.assumptions` -- Assumption 1(i)/(ii)
  validation and the central :class:`BipartiteKronecker` handle
  (§III-A).
* :mod:`~repro.kronecker.connectivity` -- Thms. 1-2 predictions and
  the Weichsel disconnection certificate (§III-A).
* :mod:`~repro.kronecker.ground_truth` -- per-factor statistics and
  the 4-cycle formulas: Thm. 3/4 (vertices), Thm. 5 and our derived
  Assumption-1(ii) variant (edges), plus sublinear global counts
  (§III-B).
* :mod:`~repro.kronecker.kernels` -- fused point-wise evaluation of
  the Thm. 3/4/5 formulas on index batches: the hot core shared by
  the formula, oracle, streaming, and parallel layers.
* :mod:`~repro.kronecker.clustering` -- Def. 10 / Thm. 6 edge
  clustering scaling law (§III-B3).
* :mod:`~repro.kronecker.community` -- Defs. 11-12, Thm. 7,
  Cors. 1-2 community preservation (§III-C).
* :mod:`~repro.kronecker.streaming` -- block edge-stream generation
  without materializing the product (§I generation use case).
* :mod:`~repro.kronecker.oracle` -- O(factor)-memory query object
  answering local ground-truth questions about arbitrary product
  vertices/edges (§I cost model).
"""

from repro.kronecker.assumptions import (
    Assumption,
    BipartiteKronecker,
    make_bipartite_product,
)
from repro.kronecker.backends import (
    BackendAdmissionError,
    KernelBackend,
    NumpyBackend,
    UnknownBackendError,
    available_backends,
    default_backend,
    get_backend,
    register_backend,
    registered_backends,
    use_backend,
)
from repro.kronecker.clustering import (
    edge_clustering_ground_truth,
    psi_factor,
    thm6_lower_bound,
)
from repro.kronecker.community import (
    BipartiteCommunity,
    community_counts,
    community_densities,
    cor1_internal_density_bound,
    cor2_external_density_bound,
    product_community,
    thm7_product_counts,
)
from repro.kronecker.connectivity import (
    ConnectivityPrediction,
    predict_product_connectivity,
    weichsel_components,
)
from repro.kronecker.degrees import (
    product_degree_histogram,
    product_degree_summary,
)
from repro.kronecker.design import DesignTarget, design_product
from repro.kronecker.distances import (
    parity_distances,
    product_diameter,
    product_eccentricities,
    product_hop_distance,
)
from repro.kronecker.ground_truth import (
    FactorStats,
    edge_squares_product,
    edge_squares_product_reference,
    global_squares_product,
    squares_if_square_free_factors,
    vertex_squares_product,
    vertex_squares_product_reference,
)
from repro.kronecker.kernels import (
    EdgeIndex,
    edge_squares_batch,
    product_edge_squares_csr,
    vertex_squares_batch,
    vertex_squares_grid,
)
from repro.kronecker.multifactor import (
    ChainFactor,
    KroneckerChain,
    combine_stats,
    multi_kronecker_global_squares,
    multi_kronecker_stats,
)
from repro.kronecker.oracle import GroundTruthOracle
from repro.kronecker.product import KroneckerProduct, kron_graph, kron_power
from repro.kronecker.regions import (
    ground_truth_truss_region,
    triangle_free_edge_count,
    triangle_free_vertex_mask,
)
from repro.kronecker.sampling import sample_edges, sample_vertices
from repro.kronecker.spectral import (
    adjacency_spectrum,
    bipartite_spectrum_symmetry,
    product_spectral_radius,
    product_spectrum,
)
from repro.kronecker.streaming import (
    stream_chain_edges,
    stream_edges,
    streamed_connectivity_audit,
)
from repro.kronecker.triangles import (
    product_edge_triangles,
    product_global_triangles,
    product_vertex_triangles,
)
from repro.kronecker.wings import (
    certified_zero_wing_edges,
    chain_wings_at_edges,
    max_wing_upper_bound,
    wing_upper_bounds,
)

__all__ = [
    "Assumption",
    "BipartiteKronecker",
    "make_bipartite_product",
    "KroneckerProduct",
    "kron_graph",
    "kron_power",
    "ConnectivityPrediction",
    "predict_product_connectivity",
    "weichsel_components",
    "FactorStats",
    "vertex_squares_product",
    "vertex_squares_product_reference",
    "edge_squares_product",
    "edge_squares_product_reference",
    "global_squares_product",
    "squares_if_square_free_factors",
    "KernelBackend",
    "NumpyBackend",
    "UnknownBackendError",
    "BackendAdmissionError",
    "get_backend",
    "use_backend",
    "register_backend",
    "registered_backends",
    "available_backends",
    "default_backend",
    "EdgeIndex",
    "edge_squares_batch",
    "product_edge_squares_csr",
    "vertex_squares_batch",
    "vertex_squares_grid",
    "edge_clustering_ground_truth",
    "psi_factor",
    "thm6_lower_bound",
    "BipartiteCommunity",
    "community_counts",
    "community_densities",
    "product_community",
    "thm7_product_counts",
    "cor1_internal_density_bound",
    "cor2_external_density_bound",
    "GroundTruthOracle",
    "stream_edges",
    "stream_chain_edges",
    "streamed_connectivity_audit",
    "sample_vertices",
    "sample_edges",
    "parity_distances",
    "product_hop_distance",
    "product_eccentricities",
    "product_diameter",
    "product_degree_histogram",
    "product_degree_summary",
    "product_vertex_triangles",
    "product_edge_triangles",
    "product_global_triangles",
    "combine_stats",
    "multi_kronecker_stats",
    "multi_kronecker_global_squares",
    "ChainFactor",
    "KroneckerChain",
    "adjacency_spectrum",
    "product_spectrum",
    "product_spectral_radius",
    "bipartite_spectrum_symmetry",
    "DesignTarget",
    "design_product",
    "wing_upper_bounds",
    "certified_zero_wing_edges",
    "chain_wings_at_edges",
    "max_wing_upper_bound",
    "triangle_free_vertex_mask",
    "triangle_free_edge_count",
    "ground_truth_truss_region",
]
