"""Ground truth for multi-factor Kronecker products.

The Graph500-lineage generators iterate the product, ``C = A ⊗ A ⊗ …``;
the paper's conclusion anticipates implementing "this style of
generator" with ground truth computed *during* generation.  The key
observation enabling that here: the statistics bundle
:class:`~repro.kronecker.ground_truth.FactorStats` is **closed under
the product** -- from the stats of two loop-free factors one can build
the stats of their product without counting anything on it:

* ``d, w2``: coordinate-wise Kronecker products,
* ``s, cw4``: the Thm.-3 machinery (whose derivation never uses
  bipartiteness, only loop-freeness),
* ``◇``: the Thm.-5 machinery,
* ``adj``: a sparse ``kron``.

Folding :func:`combine_stats` over a factor list therefore yields exact
vertex/edge/global 4-cycle ground truth for products of *any* number of
loop-free factors, with each intermediate step costing only the size of
the intermediate (the final adjacency is the same object a generator
would emit anyway).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import Graph
from repro.kronecker import kernels
from repro.kronecker.assumptions import Assumption
from repro.kronecker.ground_truth import FactorStats, _vertex_terms

__all__ = ["combine_stats", "multi_kronecker_stats", "multi_kronecker_global_squares"]


def combine_stats(stats_a: FactorStats, stats_b: FactorStats) -> FactorStats:
    """Statistics of ``A ⊗ B`` from the factors' statistics.

    Both inputs must describe loop-free graphs (enforced at
    ``FactorStats`` construction); the output describes the loop-free
    product.  No counting is performed on the product -- every field
    comes from a closed form, evaluated by the fused kernels
    (:mod:`repro.kronecker.kernels`): the vertex vector is one stacked
    matmul and the edge diamonds are built directly on the product
    pattern, with no intermediate ``sp.kron`` term or re-anchoring
    extraction.
    """
    n = stats_a.n * stats_b.n
    d = np.kron(stats_a.d, stats_b.d)
    w2 = np.kron(stats_a.w2, stats_b.w2)
    # Vertex squares via the generic (Thm. 3) formula, fused.
    s = kernels.vertex_squares_grid(stats_a, stats_b, Assumption.NON_BIPARTITE_FACTOR)
    cw4 = 2 * s + d * d + w2 - d
    # Edge squares via the generic (Thm. 5) formula, fused on the
    # product pattern (explicit zeros preserved).
    adj = sp.csr_array(sp.kron(stats_a.adj, stats_b.adj, format="csr"))
    idx_a = stats_a.edge_index
    diamond = kernels.product_edge_squares_csr(
        stats_a, stats_b, Assumption.NON_BIPARTITE_FACTOR, idx_a.rows, idx_a.cols
    )
    return FactorStats(n=n, d=d, w2=w2, s=s, cw4=cw4, diamond=diamond, adj=adj)


def multi_kronecker_stats(factors: Sequence[Graph]) -> FactorStats:
    """Exact statistics of ``factors[0] ⊗ factors[1] ⊗ …``.

    Left-associative fold of :func:`combine_stats`; with one factor
    this is just ``FactorStats.from_graph``.
    """
    if not factors:
        raise ValueError("need at least one factor")
    acc = FactorStats.from_graph(factors[0])
    for g in factors[1:]:
        acc = combine_stats(acc, FactorStats.from_graph(g))
    return acc


def multi_kronecker_global_squares(factors: Sequence[Graph]) -> int:
    """Exact global 4-cycle count of a multi-factor product.

    Uses the vector-sum factorisation at the last fold so the final
    (largest) vertex vector is never formed: only the second-to-last
    intermediate's stats are materialized.
    """
    if not factors:
        raise ValueError("need at least one factor")
    if len(factors) == 1:
        return FactorStats.from_graph(factors[0]).global_squares()
    acc = FactorStats.from_graph(factors[0])
    for g in factors[1:-1]:
        acc = combine_stats(acc, FactorStats.from_graph(g))
    last = FactorStats.from_graph(factors[-1])
    total = 0
    for sign, left, right in _vertex_terms(acc, last, Assumption.NON_BIPARTITE_FACTOR):
        total += sign * int(left.sum()) * int(right.sum())
    half, rem = divmod(total, 2)
    assert rem == 0
    squares, rem4 = divmod(half, 4)
    assert rem4 == 0
    return squares
