"""Ground truth for multi-factor Kronecker products.

The Graph500-lineage generators iterate the product, ``C = A ⊗ A ⊗ …``;
the paper's conclusion anticipates implementing "this style of
generator" with ground truth computed *during* generation.  The key
observation enabling that here: the statistics bundle
:class:`~repro.kronecker.ground_truth.FactorStats` is **closed under
the product** -- from the stats of two loop-free factors one can build
the stats of their product without counting anything on it:

* ``d, w2``: coordinate-wise Kronecker products,
* ``s, cw4``: the Thm.-3 machinery (whose derivation never uses
  bipartiteness, only loop-freeness),
* ``◇``: the Thm.-5 machinery,
* ``adj``: a sparse ``kron``.

Folding :func:`combine_stats` over a factor list therefore yields exact
vertex/edge/global 4-cycle ground truth for products of *any* number of
loop-free factors, with each intermediate step costing only the size of
the intermediate (the final adjacency is the same object a generator
would emit anyway).

:func:`combine_stats` still *materializes* each intermediate adjacency,
which caps it at products that fit in memory.  The extreme-scale tier
(:class:`KroneckerChain`) drops that: every quantity the generator
needs is **multiplicative across the Kronecker product**, so deep
chains ``X₁ ⊗ X₂ ⊗ …`` stream shard-by-shard from factor-sized tables
with nothing product-sized ever allocated:

* ``d``, ``w2 = X²1``, ``cw4 = diag(X⁴)`` are coordinate-wise
  Kronecker products of the per-factor vectors;
* ``W3 = X³∘X`` is entry-wise multiplicative on the product pattern;
* on a loop-free product, Def. 9 gives the per-entry 4-cycle count
  ``◇(p, q) = Π_t W3_t(i_t, j_t) − Π_t d_t(i_t) − Π_t d_t(j_t) + 1``
  and Def. 8 the per-vertex count
  ``s(p) = (Π cw4_t − Π d_t² − Π w2_t + Π d_t) / 2``.

These hold for factors *with* self loops as long as the product is
loop-free (at least one factor loop-free), so the 2-factor products of
Assumption 1(i)/(ii) are exactly the chains ``[M, B]`` — Thm. 3/4/5 and
the derived 1(ii) edge formula fall out of the same code path, which
the property tests assert bit-for-bit against the fused kernels.

Row-range sums of any multiplicative vertex vector (shard work
``Σ Π d_t``, per-shard ground-truth totals ``Σ s``) are evaluated in
``O(k · log)`` time from mixed-radix prefix sums — the closed forms the
degree-aware partitioner (:mod:`repro.parallel.partition`) and the
per-shard validation artifacts are built on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import Graph
from repro.kronecker import kernels
from repro.kronecker.assumptions import Assumption, BipartiteKronecker
from repro.kronecker.ground_truth import FactorStats, _vertex_terms

__all__ = [
    "combine_stats",
    "multi_kronecker_stats",
    "multi_kronecker_global_squares",
    "ChainFactor",
    "KroneckerChain",
]


def combine_stats(stats_a: FactorStats, stats_b: FactorStats) -> FactorStats:
    """Statistics of ``A ⊗ B`` from the factors' statistics.

    Both inputs must describe loop-free graphs (enforced at
    ``FactorStats`` construction); the output describes the loop-free
    product.  No counting is performed on the product -- every field
    comes from a closed form, evaluated by the fused kernels
    (:mod:`repro.kronecker.kernels`): the vertex vector is one stacked
    matmul and the edge diamonds are built directly on the product
    pattern, with no intermediate ``sp.kron`` term or re-anchoring
    extraction.
    """
    n = stats_a.n * stats_b.n
    d = np.kron(stats_a.d, stats_b.d)
    w2 = np.kron(stats_a.w2, stats_b.w2)
    # Vertex squares via the generic (Thm. 3) formula, fused.
    s = kernels.vertex_squares_grid(stats_a, stats_b, Assumption.NON_BIPARTITE_FACTOR)
    cw4 = 2 * s + d * d + w2 - d
    # Edge squares via the generic (Thm. 5) formula, fused on the
    # product pattern (explicit zeros preserved).
    adj = sp.csr_array(sp.kron(stats_a.adj, stats_b.adj, format="csr"))
    idx_a = stats_a.edge_index
    diamond = kernels.product_edge_squares_csr(
        stats_a, stats_b, Assumption.NON_BIPARTITE_FACTOR, idx_a.rows, idx_a.cols
    )
    return FactorStats(n=n, d=d, w2=w2, s=s, cw4=cw4, diamond=diamond, adj=adj)


def multi_kronecker_stats(factors: Sequence[Graph]) -> FactorStats:
    """Exact statistics of ``factors[0] ⊗ factors[1] ⊗ …``.

    Left-associative fold of :func:`combine_stats`; with one factor
    this is just ``FactorStats.from_graph``.
    """
    if not factors:
        raise ValueError("need at least one factor")
    acc = FactorStats.from_graph(factors[0])
    for g in factors[1:]:
        acc = combine_stats(acc, FactorStats.from_graph(g))
    return acc


def multi_kronecker_global_squares(factors: Sequence[Graph]) -> int:
    """Exact global 4-cycle count of a multi-factor product.

    Uses the vector-sum factorisation at the last fold so the final
    (largest) vertex vector is never formed: only the second-to-last
    intermediate's stats are materialized.
    """
    if not factors:
        raise ValueError("need at least one factor")
    if len(factors) == 1:
        return FactorStats.from_graph(factors[0]).global_squares()
    acc = FactorStats.from_graph(factors[0])
    for g in factors[1:-1]:
        acc = combine_stats(acc, FactorStats.from_graph(g))
    last = FactorStats.from_graph(factors[-1])
    total = 0
    for sign, left, right in _vertex_terms(acc, last, Assumption.NON_BIPARTITE_FACTOR):
        total += sign * int(left.sum()) * int(right.sum())
    half, rem = divmod(total, 2)
    assert rem == 0
    squares, rem4 = divmod(half, 4)
    assert rem4 == 0
    return squares


# ---------------------------------------------------------------------------
# Extreme-scale tier: streamed deep chains, no intermediates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChainFactor:
    """The factor-sized tables chain generation consumes.

    Unlike :class:`~repro.kronecker.ground_truth.FactorStats` this
    admits factors *with* self loops (the effective ``M = A + I_A`` of
    Assumption 1(ii)); loop-freeness is a property of the **product**
    and is enforced by :class:`KroneckerChain`.  All arrays are int64;
    ``w3`` is edge-aligned in CSR entry order.
    """

    n: int
    nnz: int                #: directed stored entries
    indptr: np.ndarray      #: CSR row pointers
    indices: np.ndarray     #: CSR column indices
    d: np.ndarray           #: degree vector ``X 1`` (loops count once)
    w2: np.ndarray          #: two-walk vector ``X² 1``
    cw4: np.ndarray         #: closed four-walks ``diag(X⁴)``
    w3: np.ndarray          #: ``(X³ ∘ X)`` values at stored entries, CSR order
    has_loops: bool

    @classmethod
    def from_adjacency(cls, adj) -> "ChainFactor":
        """Tables from a binary symmetric adjacency (sparse or dense)."""
        X = sp.csr_array(adj).astype(np.int64)
        X.sort_indices()
        n = X.shape[0]
        d = np.asarray(X.sum(axis=1)).ravel().astype(np.int64)
        X2 = X @ X
        w2 = np.asarray(X2.sum(axis=1)).ravel().astype(np.int64)
        cw4 = np.asarray(X2.multiply(X2).sum(axis=1)).ravel().astype(np.int64)
        coo = X.tocoo()  # row-major, i.e. CSR entry order
        if coo.nnz:
            X3 = sp.csr_array(X2 @ X)
            w3 = np.asarray(X3[coo.row, coo.col]).ravel().astype(np.int64)
        else:
            w3 = np.zeros(0, dtype=np.int64)
        return cls(
            n=int(n),
            nnz=int(X.nnz),
            indptr=X.indptr.astype(np.int64),
            indices=X.indices.astype(np.int64),
            d=d,
            w2=w2,
            cw4=cw4,
            w3=w3,
            has_loops=bool(X.diagonal().any()),
        )

    @classmethod
    def from_graph(cls, graph: Graph) -> "ChainFactor":
        return cls.from_adjacency(graph.adj)


def _prefix_table(vector: np.ndarray) -> tuple[list[int], list[int]]:
    """``(values, cumulative)`` as exact Python ints (no int64 overflow
    in the k-fold products the mixed-radix prefix sums build)."""
    values = [int(x) for x in vector]
    csum = [0]
    for x in values:
        csum.append(csum[-1] + x)
    return values, csum


class KroneckerChain:
    """A deep Kronecker chain ``C = X₁ ⊗ X₂ ⊗ … ⊗ X_k``, never formed.

    Product row ``p`` decomposes mixed-radix into per-factor digits
    ``(i_1, …, i_k)`` with ``p = ((i_1·n_2 + i_2)·n_3 + …)``; every
    quantity the generator needs is a product over digits, so row
    ranges stream from factor-sized tables (module docstring).  The
    product must be loop-free — at least one factor without self loops
    — which is what makes the Def. 8/9 ground-truth forms exact.

    Instances are cheap to pickle (factor tables only), so shard
    workers receive the whole chain, mirroring the 2-factor
    :class:`~repro.kronecker.assumptions.BipartiteKronecker` contract.
    """

    def __init__(self, factors: Sequence[ChainFactor]):
        factors = list(factors)
        if not factors:
            raise ValueError("need at least one chain factor")
        if all(f.has_loops for f in factors):
            raise ValueError(
                "chain product would have self loops (every factor has one); "
                "ground-truth formulas need a loop-free product — include at "
                "least one loop-free factor (paper §II-B)"
            )
        self.factors = factors
        n = 1
        nnz = 1
        for f in factors:
            n *= f.n
            nnz *= f.nnz
        self.n = int(n)
        self.nnz = int(nnz)
        self._tables: dict[str, list[tuple[list[int], list[int]]]] = {}

    # -- constructors -------------------------------------------------

    @classmethod
    def from_graphs(cls, graphs: Sequence[Graph]) -> "KroneckerChain":
        return cls([ChainFactor.from_graph(g) for g in graphs])

    @classmethod
    def from_bipartite(cls, bk: BipartiteKronecker) -> "KroneckerChain":
        """The 2-factor chain ``[M, B]`` of an Assumption-1 product.

        Under 1(ii) ``M = A + I_A`` carries loops; the chain formulas
        reproduce Thm. 4 and the derived 1(ii) edge form exactly
        (``diag((A+I)⁴) = cw4_A + 6 d_A + 1`` for bipartite ``A``, etc.)
        because only the *product* needs to be loop-free.
        """
        return cls(
            [
                ChainFactor.from_adjacency(bk.M.adj),
                ChainFactor.from_adjacency(bk.B.graph.adj),
            ]
        )

    # -- mixed-radix prefix machinery ---------------------------------

    def digits(self, p: int) -> tuple[int, ...]:
        """Per-factor row digits of product row ``p``."""
        if not 0 <= p < self.n:
            raise ValueError(f"row {p} out of range [0, {self.n})")
        out = [0] * len(self.factors)
        rem = p
        for t in range(len(self.factors) - 1, -1, -1):
            rem, out[t] = divmod(rem, self.factors[t].n)
        return tuple(out)

    def _vector_tables(self, kind: str) -> list[tuple[list[int], list[int]]]:
        if kind not in self._tables:
            pick = {
                "d": lambda f: f.d,
                "d2": lambda f: f.d * f.d,
                "w2": lambda f: f.w2,
                "cw4": lambda f: f.cw4,
            }[kind]
            self._tables[kind] = [_prefix_table(pick(f)) for f in self.factors]
        return self._tables[kind]

    def _kron_prefix(self, kind: str, p: int) -> int:
        """``Σ_{p' < p} Π_t v_t(digit_t(p'))`` for a per-factor vector
        family ``v`` — exact, in ``O(k)`` after table setup.

        With digits ``(i_1, …, i_k)`` of ``p`` the prefix splits by the
        first digit where a smaller row diverges::

            F(p) = Σ_t ( Π_{s<t} v_s(i_s) ) · C_t(i_t) · Π_{s>t} S_s

        where ``C_t`` is the factor-``t`` cumulative sum and ``S_t`` its
        total.
        """
        tabs = self._vector_tables(kind)
        if p <= 0:
            return 0
        totals = [csum[-1] for _, csum in tabs]
        if p >= self.n:
            acc = 1
            for s in totals:
                acc *= s
            return acc
        suffix = [1] * (len(tabs) + 1)
        for t in range(len(tabs) - 1, -1, -1):
            suffix[t] = totals[t] * suffix[t + 1]
        digits = self.digits(p)
        acc = 0
        left = 1
        for t, (values, csum) in enumerate(tabs):
            acc += left * csum[digits[t]] * suffix[t + 1]
            left *= values[digits[t]]
        return acc

    def _kron_range_sum(self, kind: str, lo: int, hi: int) -> int:
        self._check_range(lo, hi)
        return self._kron_prefix(kind, hi) - self._kron_prefix(kind, lo)

    def _check_range(self, lo: int, hi: int) -> None:
        if not 0 <= lo <= hi <= self.n:
            raise ValueError(f"row range [{lo}, {hi}) outside [0, {self.n})")

    # -- work model ---------------------------------------------------

    def row_work(self, p: int) -> int:
        """Directed entries in product row ``p``: ``Π_t d_t(i_t)``."""
        acc = 1
        for f, i in zip(self.factors, self.digits(p)):
            acc *= int(f.d[i])
        return acc

    def work_prefix(self, p: int) -> int:
        """Directed entries in rows ``[0, p)`` — the partitioner's
        cut-point oracle (``work_prefix(n) == nnz``)."""
        return self._kron_prefix("d", p)

    def row_range_work(self, lo: int, hi: int) -> int:
        """Directed entries in rows ``[lo, hi)`` (exact shard size)."""
        return self._kron_range_sum("d", lo, hi)

    # -- ground truth -------------------------------------------------

    def vertex_squares_range_sum(self, lo: int, hi: int) -> int:
        """``Σ_{p in [lo, hi)} s(p)`` in closed form — the per-shard
        validation scalar (Def. 8 summed over the shard's rows)."""
        num = (
            self._kron_range_sum("cw4", lo, hi)
            - self._kron_range_sum("d2", lo, hi)
            - self._kron_range_sum("w2", lo, hi)
            + self._kron_range_sum("d", lo, hi)
        )
        half, rem = divmod(num, 2)
        assert rem == 0, "vertex square range sum must be even"
        return half

    def global_squares(self) -> int:
        """Total 4-cycles of the chain product: ``Σ_p s(p) / 4``."""
        total, rem4 = divmod(self.vertex_squares_range_sum(0, self.n), 4)
        assert rem4 == 0, "sum of vertex square counts must be divisible by 4"
        return total

    # -- streaming generation -----------------------------------------

    def stream_rows(
        self,
        lo: int,
        hi: int,
        attach_ground_truth: bool = False,
        block_entries: int | None = None,
    ) -> Iterator[tuple[np.ndarray, ...]]:
        """Stream the directed entries of product rows ``[lo, hi)``.

        Yields ``(p, q)`` int64 blocks — or ``(p, q, squares)`` with
        exact per-entry 4-cycle counts — of at most roughly
        ``block_entries`` entries each (default ``2**20``).  The
        concatenation over all blocks is a pure function of
        ``(chain, lo, hi)``: block boundaries may move with
        ``block_entries`` but the entry sequence never does, which is
        what makes shard bytes resume- and format-independent.

        Memory is bounded by the block size plus factor tables; no
        intermediate product of a factor prefix is ever materialized —
        a row range recurses into boundary/full segments per factor and
        expands entry blocks with one outer-product index operation per
        level.
        """
        self._check_range(lo, hi)
        max_entries = int(block_entries) if block_entries else 1 << 20
        if max_entries <= 0:
            raise ValueError(f"block_entries must be positive, got {block_entries}")
        for block in self._entry_blocks(
            len(self.factors) - 1, lo, hi, max_entries, attach_ground_truth
        ):
            if attach_ground_truth:
                rows, cols, w3, drow, dcol = block
                yield rows, cols, w3 - drow - dcol + 1
            else:
                yield block

    def _entry_blocks(
        self, level: int, lo: int, hi: int, max_entries: int, gt: bool
    ) -> Iterator[tuple[np.ndarray, ...]]:
        """Entry blocks of the prefix chain ``X₁ ⊗ … ⊗ X_{level+1}``
        restricted to its rows ``[lo, hi)``.

        With ``gt`` each block carries ``(rows, cols, Πw3, Πd_row,
        Πd_col)`` so the top level can finish Def. 9 with one
        subtraction.  Deterministic order: factor-0 CSR order expanded
        lexicographically by per-factor entry order at each level.
        """
        f = self.factors[level]
        if level == 0:
            first = int(f.indptr[lo])
            last = int(f.indptr[hi])
            rows_all = np.repeat(
                np.arange(lo, hi, dtype=np.int64), np.diff(f.indptr[lo : hi + 1])
            )
            for s0 in range(0, last - first, max_entries):
                s1 = min(s0 + max_entries, last - first)
                rows = rows_all[s0:s1]
                cols = f.indices[first + s0 : first + s1]
                if gt:
                    yield rows, cols, f.w3[first + s0 : first + s1], f.d[rows], f.d[cols]
                else:
                    yield rows, cols
            return
        # Split [lo, hi) over this factor's radix: at most two partial
        # prefix rows at the boundaries plus one run of full prefix rows.
        r0, a = divmod(lo, f.n)
        r1, b = divmod(hi, f.n)
        segments: list[tuple[int, int, int, int]] = []
        if r0 == r1:
            segments.append((r0, r0 + 1, a, b))
        else:
            if a > 0:
                segments.append((r0, r0 + 1, a, f.n))
                r0 += 1
            if r0 < r1:
                segments.append((r0, r1, 0, f.n))
            if b > 0:
                segments.append((r1, r1 + 1, 0, b))
        for plo, phi, dlo, dhi in segments:
            e0 = int(f.indptr[dlo])
            e1 = int(f.indptr[dhi])
            cnt = e1 - e0
            if cnt == 0 or plo >= phi:
                continue
            t_rows = np.repeat(
                np.arange(dlo, dhi, dtype=np.int64), np.diff(f.indptr[dlo : dhi + 1])
            )
            t_cols = f.indices[e0:e1]
            if gt:
                t_w3 = f.w3[e0:e1]
                t_drow = f.d[t_rows]
                t_dcol = f.d[t_cols]
            # ``per`` is only a hint to the lower levels: small radices
            # clamp it to 1 and their blocks overshoot, which would
            # compound into materialized expansions many times
            # ``max_entries`` (and fall out of cache).  Re-chunk every
            # incoming prefix block — and, when a single prefix entry
            # already expands past the budget, the factor entries too —
            # so no materialized block exceeds ~``max_entries``.
            per = max(1, max_entries // cnt)
            group = per
            # Re-chunking is only worth the block fragmentation when a
            # block genuinely blows the budget — marginal overshoot
            # (under 1.25x for prefix groups, 2x for factor entries)
            # stays in one piece.
            slack = group + (group >> 2)
            t_step = cnt if cnt <= 2 * max_entries else max_entries
            for block in self._entry_blocks(level - 1, plo, phi, per, gt):
                if block[0].size <= slack:
                    subs = [block]
                else:
                    subs = [
                        tuple(a[s : s + group] for a in block)
                        for s in range(0, block[0].size, group)
                    ]
                for sub in subs:
                    for c0 in range(0, cnt, t_step):
                        c1 = min(c0 + t_step, cnt)
                        rows = (
                            sub[0][:, None] * f.n + t_rows[None, c0:c1]
                        ).reshape(-1)
                        cols = (
                            sub[1][:, None] * f.n + t_cols[None, c0:c1]
                        ).reshape(-1)
                        if gt:
                            w3 = (sub[2][:, None] * t_w3[None, c0:c1]).reshape(-1)
                            drow = (sub[3][:, None] * t_drow[None, c0:c1]).reshape(-1)
                            dcol = (sub[4][:, None] * t_dcol[None, c0:c1]).reshape(-1)
                            yield rows, cols, w3, drow, dcol
                        else:
                            yield rows, cols

    # -- small-product helpers (tests, refcheck referee) ---------------

    def materialize(self, max_entries: int = 5_000_000) -> sp.csr_array:
        """Fold the factors with ``sp.kron`` — referee-sized chains only."""
        if self.nnz > max_entries:
            raise ValueError(
                f"refusing to materialize a {self.nnz}-entry chain product "
                f"(cap {max_entries}); the chain exists to avoid exactly this"
            )
        acc = None
        for f in self.factors:
            adj = sp.csr_array(
                (np.ones(f.nnz, dtype=np.int64), f.indices, f.indptr), shape=(f.n, f.n)
            )
            acc = adj if acc is None else sp.csr_array(sp.kron(acc, adj, format="csr"))
        return acc

    def signature(self) -> dict:
        """Factor shape fingerprint for shard-manifest signatures."""
        return {
            "kind": "chain",
            "factors": [{"n": f.n, "nnz": f.nnz} for f in self.factors],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        shape = " x ".join(str(f.n) for f in self.factors)
        return f"KroneckerChain({shape}; nnz={self.nnz})"
