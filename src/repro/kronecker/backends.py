"""Pluggable kernel backends for the batched ground-truth formulas.

The formula layer (:mod:`repro.kronecker.kernels`) is split into two
halves: *orchestration* (coefficient algebra, bounds checks, CSR
assembly -- backend-independent, stays in ``kernels``) and the hot
*batch primitives* (hash-table build/probe, gather+fuse loops over
index arrays).  This module defines the :class:`KernelBackend`
protocol for the primitives, a process-wide registry, and runtime
selection with the precedence

    explicit ``backend=`` kwarg  >  :func:`use_backend` scope (the
    ``--backend`` CLI flag)  >  ``REPRO_KERNEL_BACKEND`` env var  >
    registry default (``numpy``).

Backends are *bit-identical by contract*: every primitive must return
exactly the arrays the numpy reference returns (same dtype, same
values) so oracle answers, shard payloads, and serve artifacts never
depend on which backend produced them.  The differential referee
(:mod:`repro.refcheck`) checks this end to end.

Admission rule (enforced here and in CI's ``backend-matrix`` /
bench-compare jobs): a backend may only become the *default* after it

1. passes ``repro verify`` bit-identity against the brute-force
   referee, and
2. beats the numpy baseline under ``benchmarks/compare.py``.

:func:`set_default_backend` refuses backends not marked admitted, and
:func:`admit_backend` refuses to mark them without both flags.  The
``numpy`` reference backend is always available and admitted by
definition (it *is* the baseline).
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Protocol, runtime_checkable

import numpy as np

__all__ = [
    "KernelBackend",
    "NumpyBackend",
    "UnknownBackendError",
    "BackendAdmissionError",
    "register_backend",
    "registered_backends",
    "available_backends",
    "get_backend",
    "use_backend",
    "default_backend",
    "set_default_backend",
    "admit_backend",
    "ENV_VAR",
]

#: Environment variable consulted when no explicit backend is given.
ENV_VAR = "REPRO_KERNEL_BACKEND"


class UnknownBackendError(ValueError):
    """Raised when a backend name is not in the registry."""


class BackendAdmissionError(ValueError):
    """Raised when the admission rule blocks a default-backend change."""


@runtime_checkable
class KernelBackend(Protocol):
    """Batch primitives every kernel backend must provide.

    All index/value arrays are int64 (bounds pre-validated by the
    caller); outputs must be **bit-identical** to
    :class:`NumpyBackend`'s.  The edge-fuse primitive may mutate its
    operand arrays -- callers pass freshly-gathered buffers.
    """

    #: Registry name, reported in metrics labels / run records / witnesses.
    name: str

    def build_edge_table(
        self, keys: np.ndarray, vals: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Open-addressing hash table ``(table_keys, table_vals, shift)``
        over unique int64 keys, load factor <= 1/4, Fibonacci hashing,
        linear probing.  Layout may differ between backends (insertion
        order is an implementation detail); probe *results* may not."""
        ...

    def probe_edge_table(
        self,
        table_keys: np.ndarray,
        table_vals: np.ndarray,
        shift: int,
        query_keys: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(found, vals)`` per query key; misses report ``vals = 0``."""
        ...

    def degrees(
        self, d_m: np.ndarray, d_b: np.ndarray, i: np.ndarray, k: np.ndarray
    ) -> np.ndarray:
        """Batched product degrees ``d_M[i] · d_B[k]`` (Theorem 3 setup)."""
        ...

    def vertex_squares_pairs(
        self, L: np.ndarray, R: np.ndarray, i: np.ndarray, k: np.ndarray
    ) -> np.ndarray:
        """``½ Σ_t L[t, i] · R[t, k]`` per batch element, asserting the
        closed-walk excess is even (indices pre-validated)."""
        ...

    def vertex_squares_codes(self, L: np.ndarray, R: np.ndarray, ps: np.ndarray) -> np.ndarray:
        """:meth:`vertex_squares_pairs` at flat codes ``p = i·n_B + k``
        with the divmod fused into the batch loop."""
        ...

    def edge_squares_fuse(
        self,
        alpha: np.ndarray,
        beta_i: np.ndarray,
        beta_j: np.ndarray,
        valid_a: np.ndarray,
        dia_b: np.ndarray,
        found_b: np.ndarray,
        d_k: np.ndarray,
        d_l: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fuse ``1 + α·w3_B − β_i·d_B(k) − β_j·d_B(l)`` with
        ``w3_B = ◇_B + d_k + d_l − 1``; invalid slots report 0.
        Consumes (may mutate) every operand array."""
        ...

    def edge_clustering(
        self, dia: np.ndarray, d_p: np.ndarray, d_q: np.ndarray
    ) -> np.ndarray:
        """Def. 10 edge clustering ``◇ / ((d_p−1)(d_q−1))`` as float64;
        ``NaN`` where ``dia < 0`` (invalid sentinel) or a degree < 2."""
        ...

    def wing_bounds_fuse(self, vals: np.ndarray, valid: np.ndarray) -> np.ndarray:
        """Rem. 1 wing upper bounds from fused supports: ``vals`` where
        ``valid``, the ``-1`` invalid sentinel elsewhere.  May mutate
        ``vals`` -- callers pass a freshly-fused buffer."""
        ...

    def max_wing_reduce(self, vals: np.ndarray, valid: np.ndarray) -> int:
        """Max support over the valid slots (0 when none are valid):
        the scalar Rem. 1 bound on the product's max wing number."""
        ...


# ---------------------------------------------------------------------------
# numpy reference backend
# ---------------------------------------------------------------------------

#: Fibonacci multiplicative hashing (Knuth): ``⌊2^64 / φ⌋``, odd.
_HASH_MULT = np.uint64(0x9E3779B97F4A7C15)

#: Cache-blocked batch evaluation: every temporary stays L2-resident so
#: intermediate passes cost cache bandwidth, not DRAM round-trips.
_BATCH_CHUNK = 16384


def _hash_slots(keys: np.ndarray, shift: int) -> np.ndarray:
    """Table slot per key for a power-of-two table of ``2^(64-shift)``."""
    return ((keys.astype(np.uint64) * _HASH_MULT) >> np.uint64(shift)).astype(np.int64)


def table_bits(n_keys: int) -> tuple[int, int]:
    """``(size, shift)`` of the probe table for ``n_keys`` entries --
    shared by all backends so tables are interchangeably probeable."""
    bits = max(3, int(np.ceil(np.log2(max(4 * n_keys, 8)))))
    return 1 << bits, 64 - bits


class NumpyBackend:
    """The always-available reference backend: pure-numpy vectorized
    rounds and cache-blocked gather loops (the PR-3 fused kernels)."""

    name = "numpy"

    def build_edge_table(
        self, keys: np.ndarray, vals: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int]:
        # Insertion runs in vectorized rounds: each round places the
        # first pending key per free slot, the rest advance one slot.
        size, shift = table_bits(keys.size)
        table_keys = np.full(size, -1, dtype=np.int64)
        table_vals = np.zeros(size, dtype=np.int64)
        pend_k, pend_v = keys, vals
        pend_p = _hash_slots(pend_k, shift)
        mask = size - 1
        while pend_k.size:
            free = table_keys[pend_p] == -1
            slots = pend_p[free]
            _, first = np.unique(slots, return_index=True)
            writers = np.flatnonzero(free)[first]
            table_keys[pend_p[writers]] = pend_k[writers]
            table_vals[pend_p[writers]] = pend_v[writers]
            placed = np.zeros(pend_k.size, dtype=bool)
            placed[writers] = True
            keep = ~placed
            pend_k, pend_v = pend_k[keep], pend_v[keep]
            pend_p = (pend_p[keep] + 1) & mask
        return table_keys, table_vals, shift

    def probe_edge_table(
        self,
        table_keys: np.ndarray,
        table_vals: np.ndarray,
        shift: int,
        query_keys: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        # One hash gather answers most queries; collision survivors
        # advance slot-by-slot on a shrinking pending subset.
        mask = table_keys.size - 1
        pos = _hash_slots(query_keys, shift)
        # ``pos`` is masked to the table size by construction, so the
        # gathers can skip numpy's bounds checking (mode="clip").
        slot_keys = np.take(table_keys, pos, mode="clip")
        pending = np.flatnonzero((slot_keys != query_keys) & (slot_keys != -1))
        while pending.size:
            nxt = (pos[pending] + 1) & mask
            pos[pending] = nxt
            fk = table_keys[nxt]
            slot_keys[pending] = fk
            pending = pending[(fk != query_keys[pending]) & (fk != -1)]
        found = slot_keys == query_keys
        vals = np.take(table_vals, pos, mode="clip")
        vals *= found  # zero the misses without a full np.where pass
        return found, vals

    def degrees(
        self, d_m: np.ndarray, d_b: np.ndarray, i: np.ndarray, k: np.ndarray
    ) -> np.ndarray:
        out = np.take(d_m, i, mode="clip")
        out *= np.take(d_b, k, mode="clip")
        return out

    def vertex_squares_pairs(
        self, L: np.ndarray, R: np.ndarray, i: np.ndarray, k: np.ndarray
    ) -> np.ndarray:
        n = i.size
        out = np.empty(n, dtype=np.int64)
        chunk = min(_BATCH_CHUNK, max(n, 1))
        tmp = np.empty(chunk, dtype=np.int64)
        tmp2 = np.empty(chunk, dtype=np.int64)
        acc = np.empty(chunk, dtype=np.int64)
        or_accumulated = np.int64(0)
        for s in range(0, n, chunk):
            e = min(s + chunk, n)
            c = e - s
            av = _vertex_terms_chunk(L, R, i[s:e], k[s:e], acc[:c], tmp[:c], tmp2[:c])
            or_accumulated |= np.bitwise_or.reduce(av) if c else np.int64(0)
            np.right_shift(av, 1, out=out[s:e])
        assert not (int(or_accumulated) & 1), (
            "vertex square formula must yield even closed-walk excess"
        )
        return out

    def vertex_squares_codes(self, L: np.ndarray, R: np.ndarray, ps: np.ndarray) -> np.ndarray:
        # The divmod that splits codes into factor coordinates runs
        # inside the cache-blocked loop, so the split indices never
        # make a full-size round-trip through DRAM.
        n_b = R.shape[1]
        n = ps.size
        out = np.empty(n, dtype=np.int64)
        chunk = min(_BATCH_CHUNK, max(n, 1))
        iv_buf = np.empty(chunk, dtype=np.int64)
        kv_buf = np.empty(chunk, dtype=np.int64)
        tmp = np.empty(chunk, dtype=np.int64)
        tmp2 = np.empty(chunk, dtype=np.int64)
        acc = np.empty(chunk, dtype=np.int64)
        or_accumulated = np.int64(0)
        for s in range(0, n, chunk):
            e = min(s + chunk, n)
            c = e - s
            iv, kv = iv_buf[:c], kv_buf[:c]
            np.floor_divide(ps[s:e], n_b, out=iv)
            np.multiply(iv, n_b, out=kv)
            np.subtract(ps[s:e], kv, out=kv)
            av = _vertex_terms_chunk(L, R, iv, kv, acc[:c], tmp[:c], tmp2[:c])
            or_accumulated |= np.bitwise_or.reduce(av) if c else np.int64(0)
            np.right_shift(av, 1, out=out[s:e])
        assert not (int(or_accumulated) & 1), (
            "vertex square formula must yield even closed-walk excess"
        )
        return out

    def edge_squares_fuse(
        self,
        alpha: np.ndarray,
        beta_i: np.ndarray,
        beta_j: np.ndarray,
        valid_a: np.ndarray,
        dia_b: np.ndarray,
        found_b: np.ndarray,
        d_k: np.ndarray,
        d_l: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        # All operands are fresh arrays, so the formula
        # ``1 + α·w3_B − β_i·d_B(k) − β_j·d_B(l)`` runs in place.
        vals = dia_b  # becomes w3_B, then the full value
        vals += d_k
        vals += d_l
        vals -= 1
        vals *= alpha
        d_k *= beta_i
        vals -= d_k
        d_l *= beta_j
        vals -= d_l
        vals += 1
        valid = valid_a
        valid &= found_b
        vals *= valid  # zero the invalid slots without a full np.where pass
        return vals, valid

    def edge_clustering(
        self, dia: np.ndarray, d_p: np.ndarray, d_q: np.ndarray
    ) -> np.ndarray:
        valid = (dia >= 0) & (d_p >= 2) & (d_q >= 2)
        denom = (d_p - 1).astype(np.float64)
        denom *= d_q - 1
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(valid, dia / denom, np.nan)
        return out

    def wing_bounds_fuse(self, vals: np.ndarray, valid: np.ndarray) -> np.ndarray:
        # ``vals`` arrives zeroed on invalid slots (edge_squares_fuse),
        # so the sentinel is a masked in-place write, not an np.where.
        vals[~valid] = -1
        return vals

    def max_wing_reduce(self, vals: np.ndarray, valid: np.ndarray) -> int:
        if not valid.any():
            return 0
        return int(vals[valid].max())


def _vertex_terms_chunk(L, R, iv, kv, av, tv, t2):
    """Accumulate ``Σ_t L[t, iv] · R[t, kv]`` into ``av`` (all buffers
    chunk-sized and preallocated; indices pre-validated, so the gathers
    skip bounds checks)."""
    np.take(L[0], iv, out=av, mode="clip")
    np.take(R[0], kv, out=tv, mode="clip")
    av *= tv
    for t in range(1, L.shape[0]):
        np.take(L[t], iv, out=tv, mode="clip")
        np.take(R[t], kv, out=t2, mode="clip")
        tv *= t2
        av += tv
    return av


# ---------------------------------------------------------------------------
# Registry and runtime selection
# ---------------------------------------------------------------------------


@dataclass
class _BackendInfo:
    name: str
    factory: Callable[[], KernelBackend]
    admitted: bool = False
    description: str = ""
    fallback: str | None = None  #: name to degrade to when the factory raises ImportError


_REGISTRY: dict[str, _BackendInfo] = {}
_INSTANCES: dict[str, KernelBackend] = {}
_OVERRIDE: list[str] = []  #: use_backend() scope stack (innermost last)
_DEFAULT_NAME = "numpy"
_WARNED_FALLBACK: set[str] = set()


def register_backend(
    name: str,
    factory: Callable[[], KernelBackend],
    *,
    admitted: bool = False,
    description: str = "",
    fallback: str | None = None,
) -> None:
    """Register a backend factory under ``name``.

    ``admitted=False`` (the default for anything but the reference
    backend) means the backend is selectable per call/scope but cannot
    become the process default until :func:`admit_backend` passes the
    admission rule.  ``fallback`` names the backend to degrade to when
    the factory raises :class:`ImportError` (missing optional dep).
    """
    _REGISTRY[name] = _BackendInfo(
        name=name, factory=factory, admitted=admitted,
        description=description, fallback=fallback,
    )
    _INSTANCES.pop(name, None)


def registered_backends() -> tuple[str, ...]:
    """All registered backend names, registration order."""
    return tuple(_REGISTRY)


def available_backends() -> tuple[str, ...]:
    """Registered backends whose dependencies import in this process."""
    out = []
    for name in _REGISTRY:
        try:
            _instance(name)
        except ImportError:
            continue
        out.append(name)
    return tuple(out)


def _require(name: str) -> _BackendInfo:
    info = _REGISTRY.get(name)
    if info is None:
        valid = ", ".join(sorted(_REGISTRY))
        raise UnknownBackendError(
            f"unknown kernel backend {name!r}; registered backends: {valid}"
        )
    return info


def _instance(name: str) -> KernelBackend:
    """Build-or-fetch the backend instance; ImportError propagates."""
    inst = _INSTANCES.get(name)
    if inst is None:
        inst = _require(name).factory()
        _INSTANCES[name] = inst
    return inst


def get_backend(backend: str | KernelBackend | None = None) -> KernelBackend:
    """Resolve a backend selection to an instance.

    ``backend`` may be an instance (returned as-is), a registered name,
    or ``None`` -- which consults, in order: the innermost
    :func:`use_backend` scope, the ``REPRO_KERNEL_BACKEND`` environment
    variable, and the process default (``numpy`` unless changed through
    the admission rule).

    A named backend whose optional dependency is missing degrades to
    its registered fallback with a one-time :class:`RuntimeWarning`;
    the returned instance's ``.name`` reports the backend actually in
    use, so records never claim an implementation that did not run.
    """
    if backend is not None and not isinstance(backend, str):
        return backend
    name = backend
    if name is None:
        if _OVERRIDE:
            name = _OVERRIDE[-1]
        else:
            name = os.environ.get(ENV_VAR) or _DEFAULT_NAME
    info = _require(name)
    try:
        return _instance(name)
    except ImportError as exc:
        if info.fallback is None:
            raise
        if name not in _WARNED_FALLBACK:
            _WARNED_FALLBACK.add(name)
            warnings.warn(
                f"kernel backend {name!r} unavailable ({exc}); "
                f"falling back to {info.fallback!r}",
                RuntimeWarning,
                stacklevel=2,
            )
        return _instance(info.fallback)


@contextmanager
def use_backend(name: str | None) -> Iterator[None]:
    """Scoped backend override (how the ``--backend`` CLI flag is
    applied): inside the context, unspecified ``backend=None`` call
    sites resolve to ``name``.  Beats the env var, loses to explicit
    kwargs.  ``None`` is a no-op scope."""
    if name is None:
        yield
        return
    _require(name)  # fail fast on unknown names, before any work runs
    _OVERRIDE.append(name)
    try:
        yield
    finally:
        _OVERRIDE.pop()


def default_backend() -> str:
    """Name the process-wide default backend."""
    return _DEFAULT_NAME


def set_default_backend(name: str) -> None:
    """Make ``name`` the process default.  Admission rule: refuses
    backends that have not been admitted via :func:`admit_backend`."""
    global _DEFAULT_NAME
    info = _require(name)
    if not info.admitted:
        raise BackendAdmissionError(
            f"backend {name!r} is not admitted as a default: it must pass "
            f"`repro verify` bit-identity against the brute-force referee "
            f"and beat the numpy baseline under benchmarks/compare.py "
            f"(see admit_backend)"
        )
    _DEFAULT_NAME = name


def admit_backend(name: str, *, verify_passed: bool, beats_baseline: bool) -> None:
    """Mark ``name`` admitted -- only with both admission checks green.

    Callers (CI, release tooling) pass the outcome of the differential
    verify run and the bench compare gate; either being False raises
    :class:`BackendAdmissionError` so a backend cannot be waved through.
    """
    info = _require(name)
    if not verify_passed:
        raise BackendAdmissionError(
            f"backend {name!r} not admitted: differential verify bit-identity "
            f"has not passed"
        )
    if not beats_baseline:
        raise BackendAdmissionError(
            f"backend {name!r} not admitted: it does not beat the numpy "
            f"baseline under benchmarks/compare.py"
        )
    info.admitted = True


# ---------------------------------------------------------------------------
# Built-in registrations
# ---------------------------------------------------------------------------


def _import_numba():
    """Import hook for the numba dependency, separated so tests can
    monkeypatch a missing-numba environment deterministically."""
    import numba

    return numba


def _numba_factory() -> KernelBackend:
    _import_numba()  # raises ImportError when the extra is not installed
    from repro.kronecker.backends_numba import NumbaBackend

    return NumbaBackend()


register_backend(
    "numpy",
    NumpyBackend,
    admitted=True,
    description="reference: vectorized rounds + cache-blocked gather loops",
)
register_backend(
    "numba",
    _numba_factory,
    admitted=False,
    description="nopython parallel-range batch loops (optional extra)",
    fallback="numpy",
)
