"""Product-aware index maps.

Thin wrappers over :mod:`repro.utils.indexing` bound to a concrete pair
of factor sizes, so Kronecker-layer code reads like the paper's
``p = γ(i, k)`` without threading block sizes everywhere.
"""

from __future__ import annotations

import numpy as np

from repro.utils.indexing import pair_index, product_to_pair

__all__ = ["ProductIndexMap"]


class ProductIndexMap:
    """Index algebra for a product with left size ``n_a``, right ``n_b``.

    Product vertex ``p`` corresponds to the factor pair
    ``(i, k) = (p // n_b, p % n_b)``; the inverse is
    ``p = i * n_b + k`` -- 0-based versions of the paper's
    ``alpha/beta/gamma`` maps (Def. 4), compatible with
    :func:`scipy.sparse.kron` ordering.
    """

    __slots__ = ("n_a", "n_b")

    def __init__(self, n_a: int, n_b: int):
        if n_a <= 0 or n_b <= 0:
            raise ValueError(f"factor sizes must be positive, got ({n_a}, {n_b})")
        self.n_a = int(n_a)
        self.n_b = int(n_b)

    @property
    def n_product(self) -> int:
        return self.n_a * self.n_b

    def split(self, p):
        """Product index -> ``(i, k)`` factor pair (vectorised)."""
        p = np.asarray(p)
        if np.any(p < 0) or np.any(p >= self.n_product):
            raise IndexError("product vertex index out of range")
        return product_to_pair(p, self.n_b)

    def fuse(self, i, k):
        """Factor pair ``(i, k)`` -> product index (vectorised)."""
        i = np.asarray(i)
        if np.any(i < 0) or np.any(i >= self.n_a):
            raise IndexError("left-factor index out of range")
        return pair_index(i, k, self.n_b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProductIndexMap(n_a={self.n_a}, n_b={self.n_b})"
