"""Minimal wall-clock timing for the experiment harness.

The guides' first rule of optimization is *measure before you change
anything*.  The benchmark harness needs only coarse wall-clock numbers
(the paper's claims are asymptotic shapes, not absolute times), so a
``perf_counter`` context manager is the right altitude -- no external
profiler dependency, no global state.
"""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self.start is not None
        self.elapsed = time.perf_counter() - self.start

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Timer(elapsed={self.elapsed:.6f}s)"
