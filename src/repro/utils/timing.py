"""Back-compat wall-clock timing, now backed by the observability layer.

Historically this module owned a bare ``perf_counter`` context manager;
the tracing/metrics subsystem (:mod:`repro.obs`) subsumed it.  ``Timer``
stays importable from here as a thin alias over
:class:`repro.obs.span.Span` so existing harness code and examples keep
working unchanged — same ``.start`` / ``.elapsed`` fields, same
reusability.  New code wanting named or nested timings should use
``repro.obs`` spans directly.
"""

from __future__ import annotations

from repro.obs.span import Span

__all__ = ["Timer"]


class Timer(Span):
    """Context manager measuring elapsed wall-clock seconds.

    A :class:`~repro.obs.span.Span` named ``"timer"`` with no tracer
    attached; exiting without entering raises ``RuntimeError`` (an
    explicit guard, unlike the old ``assert``, so it survives
    ``python -O``).

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("timer")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Timer(elapsed={self.elapsed:.6f}s)"
