"""Uniform argument validation helpers.

Every public entry point in the library validates its inputs through
these helpers so error messages are consistent and tests can assert on
them.  They are deliberately cheap: scalar checks are O(1) and matrix
checks are O(nnz) at worst (``check_symmetric``).
"""

from __future__ import annotations

import numbers

import numpy as np
import scipy.sparse as sp

__all__ = [
    "check_integer",
    "check_positive",
    "check_nonnegative",
    "check_probability",
    "check_square",
    "check_symmetric",
]


def check_integer(value, name: str) -> int:
    """Return ``value`` as a Python int, rejecting non-integral input."""
    if isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got bool")
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, np.integer):
        return int(value)
    raise TypeError(f"{name} must be an integer, got {type(value).__name__}")


def check_positive(value, name: str) -> int:
    """Return ``value`` as int, requiring ``value >= 1``."""
    value = check_integer(value, name)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_nonnegative(value, name: str) -> int:
    """Return ``value`` as int, requiring ``value >= 0``."""
    value = check_integer(value, name)
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_probability(value, name: str) -> float:
    """Return ``value`` as float, requiring it lies in ``[0, 1]``."""
    if not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_square(matrix, name: str = "matrix"):
    """Raise unless ``matrix`` is 2-D and square; return it unchanged."""
    shape = matrix.shape
    if len(shape) != 2 or shape[0] != shape[1]:
        raise ValueError(f"{name} must be square, got shape {shape}")
    return matrix


def check_symmetric(matrix, name: str = "matrix"):
    """Raise unless sparse/dense ``matrix`` equals its transpose."""
    check_square(matrix, name)
    if sp.issparse(matrix):
        diff = (matrix - matrix.T).tocoo()
        if diff.nnz and np.any(diff.data != 0):
            raise ValueError(f"{name} must be symmetric (undirected graph)")
    else:
        arr = np.asarray(matrix)
        if not np.array_equal(arr, arr.T):
            raise ValueError(f"{name} must be symmetric (undirected graph)")
    return matrix
