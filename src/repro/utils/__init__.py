"""Shared low-level utilities for the :mod:`repro` library.

This subpackage holds helpers that every other layer builds on:

* :mod:`repro.utils.indexing` -- the vectorised Kronecker block index
  maps (the paper's ``alpha``/``beta``/``gamma`` functions, Def. 4).
* :mod:`repro.utils.validation` -- argument checking helpers that raise
  uniform, descriptive errors.
* :mod:`repro.utils.rng` -- seeded random-number-generator plumbing so
  every stochastic generator in the library is reproducible.
* :mod:`repro.utils.timing` -- the back-compat ``Timer`` alias over the
  observability layer's :class:`~repro.obs.span.Span` (see
  :mod:`repro.obs` for named/nested spans and metrics).
"""

from repro.utils.indexing import (
    block_index,
    intra_index,
    pair_index,
    pair_to_product,
    product_to_pair,
)
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_integer,
    check_nonnegative,
    check_positive,
    check_probability,
    check_square,
    check_symmetric,
)

__all__ = [
    "block_index",
    "intra_index",
    "pair_index",
    "pair_to_product",
    "product_to_pair",
    "as_generator",
    "spawn_generators",
    "Timer",
    "check_integer",
    "check_nonnegative",
    "check_positive",
    "check_probability",
    "check_square",
    "check_symmetric",
]
