"""Random-number-generator plumbing.

All stochastic generators in :mod:`repro.generators` accept a ``seed``
argument that may be ``None``, an integer, or an existing
:class:`numpy.random.Generator`.  Routing everything through
:func:`as_generator` guarantees that (a) passing the same integer twice
reproduces the same graph, and (b) passing a shared ``Generator``
advances a single stream, which is what callers want when drawing many
graphs in one experiment.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "spawn_generators"]


def as_generator(seed=None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` gives fresh OS entropy; an int gives a deterministic PCG64
    stream; an existing ``Generator`` is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``seed``.

    Uses :class:`numpy.random.SeedSequence` spawning so child streams are
    statistically independent -- the right tool when fanning work out to
    worker processes, per the HPC guidance of keeping per-worker RNG
    state explicit instead of sharing one stream.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children by jumping the underlying bit generator state.
        return [np.random.default_rng(seed.integers(0, 2**63)) for _ in range(count)]
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]
