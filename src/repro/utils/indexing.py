"""Kronecker block index maps (paper Def. 4 and surrounding text).

The paper defines, for a block-structured array with block size ``n`` and
**1-based** indices::

    alpha_n(i) = floor((i - 1) / n) + 1      (block number)
    beta_n(i)  = ((i - 1) mod n) + 1         (intra-block index)
    gamma_n(x, y) = (x - 1) * n + y          (inverse map)

This library uses **0-based** indices throughout, where the maps take the
simpler form ``alpha(p) = p // n``, ``beta(p) = p % n`` and
``gamma(i, k) = i * n + k``.  With this convention the entry identity of
the Kronecker product reads::

    (A (x) B)[i * n_B + k, j * n_B + l] = A[i, j] * B[k, l]

which is exactly the ordering produced by :func:`numpy.kron` and
:func:`scipy.sparse.kron`, so factor indices recovered by these maps can
be used directly against materialized products.

All functions are fully vectorised: they accept scalars or numpy arrays
and return the same shape.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "block_index",
    "intra_index",
    "pair_index",
    "product_to_pair",
    "pair_to_product",
]


def block_index(p, block_size: int):
    """Return the paper's ``alpha`` map: the factor-``A`` index of ``p``.

    Parameters
    ----------
    p:
        Product-graph vertex index (0-based scalar or array).
    block_size:
        Number of vertices in factor ``B`` (the block size of the
        Kronecker product).

    Returns
    -------
    The index ``i`` into factor ``A`` such that product vertex ``p``
    corresponds to the factor pair ``(i, k)``.
    """
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    return np.asarray(p) // block_size


def intra_index(p, block_size: int):
    """Return the paper's ``beta`` map: the factor-``B`` index of ``p``.

    See :func:`block_index` for the conventions; this returns the index
    ``k`` into factor ``B``.
    """
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    return np.asarray(p) % block_size


def pair_index(i, k, block_size: int):
    """Return the paper's ``gamma`` map: product index of pair ``(i, k)``.

    Inverse of ``(block_index, intra_index)``:
    ``pair_index(block_index(p, n), intra_index(p, n), n) == p``.
    """
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    i = np.asarray(i)
    k = np.asarray(k)
    if np.any(k >= block_size) or np.any(k < 0):
        raise ValueError("intra-block index out of range [0, block_size)")
    return i * block_size + k


def product_to_pair(p, block_size: int):
    """Split product vertex indices into factor pairs ``(i, k)``.

    Convenience wrapper returning ``(block_index(p), intra_index(p))`` in
    one call (one pass over the data via :func:`numpy.divmod`).
    """
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    return np.divmod(np.asarray(p), block_size)


def pair_to_product(pairs, block_size: int):
    """Map an ``(m, 2)`` array of factor pairs to product indices.

    ``pairs[:, 0]`` are factor-``A`` indices and ``pairs[:, 1]`` are
    factor-``B`` indices.
    """
    pairs = np.asarray(pairs)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError(f"pairs must have shape (m, 2), got {pairs.shape}")
    return pair_index(pairs[:, 0], pairs[:, 1], block_size)
