"""Pre-fork multi-process serving front end (gunicorn-sync shaped).

The threaded front end (:mod:`repro.serve.http`) tops out near the cost
of stdlib HTTP parsing plus the GIL: one Python process does all the
protocol work.  This module runs the classic pre-fork pattern instead:

1. the **parent** binds the listening socket, loads the oracle artifact
   **once** with ``load_oracle(..., mmap=True)`` -- every large array
   (CSR triplets, stats vectors, coefficient stacks) is a read-only
   page-cache view of ``oracle.npz``, never a per-process copy;
2. it forks ``workers`` children that each ``accept()`` on the shared
   socket and serve connections with their own
   :class:`~repro.serve.service.OracleService` over the shared arrays
   (small derived state rides fork copy-on-write; the big arrays are
   file-backed, so per-worker RSS stays flat as workers scale --
   asserted in ``tests/serve/test_prefork.py``);
3. the parent supervises: a crashed worker is respawned, SIGTERM fans
   out for a graceful drain (in-flight requests complete, keep-alive
   connections release, workers exit 0), and each worker's metrics
   snapshot is merged into the parent registry via the same
   snapshot-merge machinery the ProcessPool paths use.

Both protocols share one port.  The first byte of a connection decides:
``0x9f`` (the :data:`repro.serve.wire.MAGIC` prefix, outside printable
ASCII) selects the binary batch protocol, anything else is HTTP/1.1
JSON handled by the exact same handler class as the threaded server.
Connections are keep-alive in both protocols; wire connections may
pipeline any number of frames.

``repro serve --workers-procs N`` boots this front end;
``benchmarks/bench_serve.py`` records the HTTP-vs-wire-vs-in-process
throughput trajectory over it.
"""

from __future__ import annotations

import json
import os
import select
import signal
import socket
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Optional

from repro import obs
from repro.obs import get_metrics
from repro.serve import wire
from repro.serve.artifact import artifact_info, load_oracle
from repro.serve.http import HandlerContext
from repro.serve.service import OracleService, Overloaded

__all__ = ["PreforkServer", "PROTOCOLS"]

#: Which protocols a server may speak: JSON HTTP, the binary wire
#: protocol, or both sniffed on the same port.
PROTOCOLS = ("json", "wire", "both")

_WIRE_FIRST_BYTE = wire.MAGIC[:1]


class _ConnReader:
    """Minimal buffered reader over ``recv`` with an inspectable buffer.

    ``socket.makefile`` hides its read-ahead, which makes "is a
    pipelined frame already buffered?" unanswerable -- and the drain
    loop needs exactly that question.  This reader exposes
    :attr:`pending` so the wire loop only parks in ``select`` when the
    buffer is truly empty.

    Reads advance a cursor instead of re-slicing the buffer: a deep
    pipeline leaves many frames buffered at once, and slicing the
    remainder on every 16-byte header read would cost O(buffered^2)
    memcpy over the burst.  The consumed prefix is compacted away once
    it grows past 64 KiB.
    """

    __slots__ = ("_conn", "_buf", "_pos")

    def __init__(self, conn: socket.socket):
        self._conn = conn
        self._buf = bytearray()
        self._pos = 0

    @property
    def pending(self) -> bool:
        return self._pos < len(self._buf)

    def read(self, n: int) -> bytes:
        need = self._pos + n
        while len(self._buf) < need:
            chunk = self._conn.recv(1 << 16)
            if not chunk:
                break
            self._buf += chunk
        end = min(need, len(self._buf))
        out = bytes(self._buf[self._pos : end])
        self._pos = end
        if self._pos == len(self._buf):
            del self._buf[:]
            self._pos = 0
        elif self._pos > (1 << 16):
            del self._buf[: self._pos]
            self._pos = 0
        return out


class PreforkServer:
    """Parent handle: bind, fork, supervise, drain, merge.

    Parameters mirror ``repro serve``: ``workers`` forked serving
    processes (each also running ``batcher_threads`` service batchers
    for the HTTP path), ``protocol`` limiting what the port speaks,
    ``grace`` seconds for the SIGTERM drain, and ``mmap`` selecting the
    zero-copy artifact load (on by default -- the point of this front
    end).  ``start()`` returns in the parent once the socket is bound
    and every worker is forked; clients may connect immediately
    (connections queue in the accept backlog until a worker picks them
    up).
    """

    def __init__(
        self,
        artifact: str | os.PathLike,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        protocol: str = "both",
        backend: Optional[str] = None,
        max_queue: int = 1024,
        max_batch: int = 65536,
        cache_size: int = 4096,
        batcher_threads: int = 1,
        grace: float = 5.0,
        keepalive_timeout: float = 5.0,
        mmap: bool = True,
        state_dir: Optional[str | os.PathLike] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if protocol not in PROTOCOLS:
            raise ValueError(f"protocol must be one of {PROTOCOLS}, got {protocol!r}")
        self.artifact = Path(artifact)
        self.host = host
        self.port = port
        self.workers = workers
        self.protocol = protocol
        self.backend = backend
        self.max_queue = max_queue
        self.max_batch = max_batch
        self.cache_size = cache_size
        self.batcher_threads = batcher_threads
        self.grace = grace
        self.keepalive_timeout = keepalive_timeout
        self.mmap = mmap
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.info: dict[str, Any] = {}
        self.oracle = None
        self.respawns = 0
        self._listener: Optional[socket.socket] = None
        self._pids: dict[int, int] = {}  # worker index -> pid
        self._plock = threading.Lock()
        self._stopping = False
        self._started = False

    # ------------------------------------------------------------------
    # Parent lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "PreforkServer":
        """Bind the socket, load the oracle once, fork the workers."""
        if self._started:
            return self
        self.info = artifact_info(self.artifact)
        # One load, pre-fork: with mmap=True the arrays are page-cache
        # views of oracle.npz shared by every child; derived small state
        # (term matrices, service-free oracle caches) rides fork CoW.
        self.oracle = load_oracle(self.artifact, backend=self.backend, mmap=self.mmap)
        if self.state_dir is None:
            self.state_dir = Path(tempfile.mkdtemp(prefix="repro-prefork-"))
        else:
            self.state_dir.mkdir(parents=True, exist_ok=True)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._started = True
        for idx in range(self.workers):
            self._spawn(idx)
        return self

    def _spawn(self, idx: int) -> None:
        obs_enabled = obs.is_enabled()
        pid = os.fork()
        if pid == 0:
            # Child: never returns.
            try:
                _WorkerProcess(self, idx, obs_enabled).run()
            except BaseException:  # pragma: no cover - crash path
                os._exit(1)
            os._exit(0)
        self._pids[idx] = pid

    def reap_and_respawn(self) -> None:
        """Collect dead workers; fork replacements unless stopping."""
        with self._plock:
            for idx, pid in list(self._pids.items()):
                try:
                    done, _status = os.waitpid(pid, os.WNOHANG)
                except ChildProcessError:
                    done = pid
                if done:
                    del self._pids[idx]
                    if not self._stopping:
                        self.respawns += 1
                        self._spawn(idx)

    def run_forever(self, poll: float = 0.2) -> None:
        """Supervise until :meth:`stop` (or an interrupting signal)."""
        while not self._stopping:
            self.reap_and_respawn()
            time.sleep(poll)

    def stop(self) -> dict[str, Any]:
        """SIGTERM fan-out, graceful drain, reap, merge worker metrics.

        Returns the aggregate service tallies
        (``requests``/``queries``/``hits``/``shed`` summed across
        workers, plus ``workers``/``respawns``); per-series metrics are
        merged into the parent's live registry so a ``--metrics-out``
        run record carries every worker's counters and histograms.
        """
        self._stopping = True
        with self._plock:
            pids = dict(self._pids)
        for pid in pids.values():
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        deadline = time.monotonic() + self.grace + 2.0
        for idx, pid in pids.items():
            self._reap(pid, deadline)
            with self._plock:
                self._pids.pop(idx, None)
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        return self._merge_worker_state()

    def _reap(self, pid: int, deadline: float) -> None:
        while True:
            try:
                done, _ = os.waitpid(pid, os.WNOHANG)
            except ChildProcessError:
                return
            if done:
                return
            if time.monotonic() >= deadline:
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    return
                try:
                    os.waitpid(pid, 0)
                except ChildProcessError:
                    pass
                return
            time.sleep(0.02)

    def _merge_worker_state(self) -> dict[str, Any]:
        totals = {"requests": 0, "queries": 0, "hits": 0, "shed": 0}
        registry = get_metrics()
        merged = 0
        for path in sorted(self.state_dir.glob("worker-*.json")):
            try:
                state = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):  # pragma: no cover - torn write
                continue
            registry.merge_snapshot(state.get("metrics", {}))
            for key in totals:
                totals[key] += int(state.get("service", {}).get(key, 0))
            merged += 1
        totals["workers"] = self.workers
        totals["workers_reported"] = merged
        totals["respawns"] = self.respawns
        return totals

    def __enter__(self) -> "PreforkServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        if not self._stopping:
            self.stop()


class _WorkerProcess:
    """One forked serving process: accept loop, drain, snapshot, exit."""

    def __init__(self, server: PreforkServer, idx: int, obs_enabled: bool):
        self.srv = server
        self.idx = idx
        self.obs_enabled = obs_enabled
        self.draining = False
        self.ctx: Optional[HandlerContext] = None
        self._conn_threads: set[threading.Thread] = set()
        self._tlock = threading.Lock()

    # -- lifecycle ------------------------------------------------------

    def run(self) -> None:
        srv = self.srv
        # Fresh registry per worker: the snapshot written at exit then
        # holds exactly this worker's traffic (the parent's startup
        # series would otherwise be double-counted N times on merge).
        if self.obs_enabled:
            obs.enable()
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, self._on_sigterm)
        service = OracleService(
            srv.oracle,
            max_queue=srv.max_queue,
            max_batch=srv.max_batch,
            cache_size=srv.cache_size,
            workers=srv.batcher_threads,
        ).start()
        self.service = service
        self.ctx = HandlerContext(service, info=srv.info, worker_label=str(self.idx))
        listener = srv._listener
        while not self.draining:
            try:
                conn, addr = listener.accept()
            except OSError:
                break  # listener closed by the SIGTERM handler
            thread = threading.Thread(
                target=self._serve_connection, args=(conn, addr), daemon=True
            )
            with self._tlock:
                self._conn_threads.add(thread)
            thread.start()
        # Drain: finish in-flight requests, release keep-alive clients.
        self.ctx.draining = True
        deadline = time.monotonic() + srv.grace
        for thread in self._snapshot_threads():
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        service.stop()
        self._write_state()
        os._exit(0)

    def _on_sigterm(self, signum, frame) -> None:
        self.draining = True
        if self.ctx is not None:
            self.ctx.draining = True
        listener = self.srv._listener
        if listener is not None:
            # Closing the shared-socket FD breaks the blocked accept()
            # (PEP 475 would otherwise retry it forever).
            try:
                listener.close()
            except OSError:  # pragma: no cover
                pass

    def _snapshot_threads(self) -> list[threading.Thread]:
        with self._tlock:
            return [t for t in self._conn_threads if t.is_alive()]

    def _write_state(self) -> None:
        state = {
            "worker": self.idx,
            "pid": os.getpid(),
            "service": self.service.stats(),
            "metrics": get_metrics().snapshot(),
        }
        path = self.srv.state_dir / f"worker-{self.idx}.json"
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(state), encoding="utf-8")
        os.replace(tmp, path)

    # -- per-connection dispatch ---------------------------------------

    def _serve_connection(self, conn: socket.socket, addr) -> None:
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn.settimeout(self.srv.keepalive_timeout)
            try:
                first = conn.recv(1, socket.MSG_PEEK)
            except (TimeoutError, OSError):
                return
            if not first:
                return
            if first == _WIRE_FIRST_BYTE:
                if self.srv.protocol == "json":
                    conn.sendall(
                        wire.encode_error(
                            wire.STATUS_BAD_REQUEST, "wire protocol disabled (--protocol json)"
                        )
                    )
                    return
                self._serve_wire(conn)
            else:
                if self.srv.protocol == "wire":
                    conn.sendall(
                        b"HTTP/1.1 403 Forbidden\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
                    )
                    return
                self.ctx.handle_connection(conn, addr)
        except (BrokenPipeError, ConnectionResetError):
            pass
        except Exception:  # pragma: no cover - defensive; connection dies
            pass
        finally:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
            with self._tlock:
                self._conn_threads.discard(threading.current_thread())

    def _serve_wire(self, conn: socket.socket) -> None:
        """Keep-alive wire loop: frames answered in order, pipelining ok.

        Queries bypass the micro-batch queue through
        :meth:`~repro.serve.service.OracleService.answer` -- one frame
        is already a batch, and the queue's cross-thread hand-off would
        dominate per-frame cost at wire rates.
        """
        conn.settimeout(None)
        reader = _ConnReader(conn)
        metrics = get_metrics()
        latency = metrics.histogram("serve.wire.latency_seconds")
        counters: dict[tuple[str, int], Any] = {}
        answer = self.service.answer
        # Responses coalesce into one buffer, flushed when the request
        # buffer drains (client is now waiting) or it grows past 1 MiB:
        # a deep pipeline costs one sendall per burst, not per frame.
        out = bytearray()
        while True:
            if not reader.pending:
                if out:
                    conn.sendall(out)
                    del out[:]
                # While draining, poll at timeout 0: frames already sent
                # by the client (sitting in the kernel buffer) still get
                # answered; only a truly idle connection closes.
                draining = self.ctx.draining
                readable, _, _ = select.select([conn], [], [], 0.0 if draining else 0.25)
                if not readable:
                    if draining:
                        return
                    continue
            t0 = time.perf_counter()
            try:
                request = wire.read_request(reader)
            except wire.WireProtocolError as exc:
                # Framing is lost; answer once, then drop the connection.
                try:
                    out += wire.encode_error(wire.STATUS_BAD_REQUEST, str(exc))
                    conn.sendall(out)
                except OSError:
                    pass
                return
            if request is None:
                if out:
                    conn.sendall(out)
                return  # clean EOF at a frame boundary
            kind, ps, qs = request
            status = wire.STATUS_OK
            try:
                result = answer(kind, ps, qs)
                out += wire.encode_response(result, kind)
            except Overloaded as exc:
                status = wire.STATUS_OVERLOADED
                out += wire.encode_error(status, str(exc))
            except (ValueError, IndexError) as exc:
                status = wire.STATUS_BAD_REQUEST
                out += wire.encode_error(status, str(exc))
            except Exception as exc:  # pragma: no cover - defensive
                status = wire.STATUS_INTERNAL
                out += wire.encode_error(status, f"internal error: {exc}")
            if len(out) > (1 << 20):
                conn.sendall(out)
                del out[:]
            latency.observe(time.perf_counter() - t0)
            counter = counters.get((kind, status))
            if counter is None:
                counter = counters[(kind, status)] = metrics.counter(
                    "serve.wire.responses_total", kind=kind, status=str(status)
                )
            counter.inc()
