"""Compact binary batch protocol for oracle queries (schema ``repro.wire/1``).

The JSON HTTP API is convenient but pays for itself on every request:
request-line parsing, header round-trips, JSON encode/decode, and --
with naive clients -- a fresh TCP connection per request.  The wire
protocol strips a query down to a fixed 16-byte header plus raw
little-endian ``int64`` index arrays, and answers with a 16-byte header
plus a raw ``int64``/``float64`` value array.  Frames are fully
length-prefixed (the header carries both array lengths), so framing
survives pipelining: a client may write any number of request frames
before reading the first response, and responses come back in request
order on the same connection.

Frame layout (all integers little-endian):

=========  =======================================================
request    ``magic(2) version(1) kind(1) flags(1) pad(3) n_ps(u32)
           n_qs(u32)`` then ``ps`` as ``int64[n_ps]`` then ``qs``
           as ``int64[n_qs]``
response   ``magic(2) version(1) status(1) dtype(1) pad(3)
           n_values(u32) msg_len(u32)`` then values then a UTF-8
           error message of ``msg_len`` bytes
=========  =======================================================

The magic starts with byte ``0x9F`` -- not printable ASCII, so the
first byte of a wire frame can never collide with an HTTP method
(``GET``/``POST``/...).  That is what lets the pre-fork front end
(:mod:`repro.serve.prefork`) serve both protocols on one port by
peeking a single byte.

Masking semantics are the oracle's, passed through raw: ``edge_squares``
and ``wings`` answers carry ``-1``
(:data:`~repro.serve.service.INVALID_SQUARES`) at non-edge slots and
``clustering`` carries ``NaN`` out of domain --
status stays ``OK`` because the *frame* was well-formed.  Malformed
frames (bad kind, bad index dtype, out-of-range vertices) answer
``STATUS_BAD_REQUEST`` with a message; queue saturation answers
``STATUS_OVERLOADED``; both leave the connection usable.

:class:`WireClient` is the reference client: a small pool of persistent
keep-alive connections, batched query methods mirroring
:class:`~repro.serve.service.OracleService`, and a :meth:`WireClient.pipeline`
helper that keeps many frames in flight for throughput work
(``benchmarks/bench_serve.py`` drives it).
"""

from __future__ import annotations

import socket
import struct
import threading
from typing import Any, BinaryIO, Optional, Union

import numpy as np

__all__ = [
    "WIRE_SCHEMA",
    "MAGIC",
    "WIRE_VERSION",
    "KINDS",
    "STATUS_OK",
    "STATUS_BAD_REQUEST",
    "STATUS_OVERLOADED",
    "STATUS_INTERNAL",
    "WireError",
    "WireProtocolError",
    "WireServerError",
    "encode_request",
    "encode_response",
    "encode_error",
    "read_request",
    "read_response",
    "WireClient",
]

#: Wire schema tag; bump :data:`WIRE_VERSION` on incompatible changes.
WIRE_SCHEMA = "repro.wire/1"
WIRE_VERSION = 1

#: First byte 0x9F is outside printable ASCII, disjoint from every HTTP
#: method initial -- the invariant the one-byte protocol sniff relies on.
MAGIC = b"\x9fW"

_HEADER = struct.Struct("<2sBBB3xII")
HEADER_SIZE = _HEADER.size  # 16 bytes, both directions

#: Query kind codes (request header byte 3).  Codes are positional and
#: append-only: ``wings`` landed at code 5 after ``global`` so every
#: earlier code keeps its meaning across versions.
KINDS = ("degree", "vertex_squares", "edge_squares", "clustering", "global", "wings")
_KIND_CODE = {name: code for code, name in enumerate(KINDS)}

#: Response status codes (response header byte 3).
STATUS_OK = 0
STATUS_BAD_REQUEST = 1
STATUS_OVERLOADED = 2
STATUS_INTERNAL = 3

_STATUS_NAMES = {
    STATUS_OK: "ok",
    STATUS_BAD_REQUEST: "bad-request",
    STATUS_OVERLOADED: "overloaded",
    STATUS_INTERNAL: "internal",
}

#: Answer dtype tags (response header byte 4).
_DTYPE_CODES: dict[int, np.dtype] = {
    0: np.dtype("<i8"),
    1: np.dtype("<f8"),
}
_CODE_FOR_KIND = {"clustering": 1}  # every other kind answers int64

#: Sanity bound on per-frame element counts: a frame is a micro-batch,
#: not a bulk transfer.  Protects the server from a hostile/corrupt
#: header demanding a multi-GiB allocation.
MAX_FRAME_ELEMENTS = 1 << 24

_PAIR_KINDS = frozenset({"edge_squares", "clustering", "wings"})


class WireError(Exception):
    """Base class for wire-protocol failures."""


class WireProtocolError(WireError):
    """The byte stream is not a valid ``repro.wire/1`` frame."""


class WireServerError(WireError):
    """The server answered an error status frame."""

    def __init__(self, status: int, message: str):
        super().__init__(f"{_STATUS_NAMES.get(status, status)}: {message}")
        self.status = status
        self.message = message


def _as_index_bytes(values: Any, name: str) -> tuple[bytes, int]:
    arr = np.ascontiguousarray(values, dtype="<i8")
    if arr.ndim != 1:
        raise ValueError(f"{name} must be a flat index list, got shape {arr.shape}")
    return arr.tobytes(), arr.size


def encode_request(kind: str, ps: Any = None, qs: Any = None) -> bytes:
    """Serialize one query as a request frame."""
    try:
        code = _KIND_CODE[kind]
    except KeyError:
        raise ValueError(f"unknown query kind {kind!r} (expected one of {KINDS})") from None
    if kind == "global":
        if ps is not None or qs is not None:
            raise ValueError("global queries take no index arrays")
        return _HEADER.pack(MAGIC, WIRE_VERSION, code, 0, 0, 0)
    if ps is None:
        raise ValueError(f"{kind} queries need a ps index list")
    ps_bytes, n_ps = _as_index_bytes(ps, "ps")
    if kind in _PAIR_KINDS:
        if qs is None:
            raise ValueError(f"{kind} queries need both ps and qs index lists")
        qs_bytes, n_qs = _as_index_bytes(qs, "qs")
    elif qs is not None:
        raise ValueError(f"{kind} queries take only ps, got a qs list too")
    else:
        qs_bytes, n_qs = b"", 0
    header = _HEADER.pack(MAGIC, WIRE_VERSION, code, 0, n_ps, n_qs)
    return header + ps_bytes + qs_bytes


def encode_response(values: Union[np.ndarray, int], kind: str) -> bytes:
    """Serialize a successful answer (dtype tagged by query kind)."""
    dtype_code = _CODE_FOR_KIND.get(kind, 0)
    arr = np.ascontiguousarray(values, dtype=_DTYPE_CODES[dtype_code])
    if arr.ndim == 0:
        arr = arr.reshape(1)
    header = _HEADER.pack(MAGIC, WIRE_VERSION, STATUS_OK, dtype_code, arr.size, 0)
    return header + arr.tobytes()


def encode_error(status: int, message: str) -> bytes:
    """Serialize an error answer; the connection stays usable."""
    body = message.encode("utf-8", errors="replace")
    header = _HEADER.pack(MAGIC, WIRE_VERSION, status, 0, 0, len(body))
    return header + body


def _read_exact(stream: BinaryIO, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; ``None`` on clean EOF at a frame edge,
    :class:`WireProtocolError` on EOF mid-frame."""
    if n == 0:
        return b""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = stream.read(n - got)
        if not chunk:
            if got == 0:
                return None
            raise WireProtocolError(f"stream truncated mid-frame ({got}/{n} bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return chunks[0] if len(chunks) == 1 else b"".join(chunks)


def _parse_header(raw: bytes) -> tuple[int, int, int, int]:
    magic, version, code, aux, n_a, n_b = _HEADER.unpack(raw)
    if magic != MAGIC:
        raise WireProtocolError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if version != WIRE_VERSION:
        raise WireProtocolError(f"unsupported wire version {version} (this build speaks {WIRE_VERSION})")
    if n_a > MAX_FRAME_ELEMENTS or n_b > MAX_FRAME_ELEMENTS:
        raise WireProtocolError(
            f"frame too large: {max(n_a, n_b)} elements (cap {MAX_FRAME_ELEMENTS})"
        )
    return code, aux, n_a, n_b


def read_request(stream: BinaryIO) -> Optional[tuple[str, Optional[np.ndarray], Optional[np.ndarray]]]:
    """Read one request frame: ``(kind, ps, qs)``; ``None`` on clean EOF."""
    raw = _read_exact(stream, HEADER_SIZE)
    if raw is None:
        return None
    code, _flags, n_ps, n_qs = _parse_header(raw)
    if code >= len(KINDS):
        # Drain the payload so the connection stays framed, then report.
        _read_exact(stream, 8 * (n_ps + n_qs))
        raise WireProtocolError(f"unknown kind code {code}")
    kind = KINDS[code]
    ps = qs = None
    if n_ps:
        ps = np.frombuffer(_read_exact(stream, 8 * n_ps), dtype="<i8")
    if n_qs:
        qs = np.frombuffer(_read_exact(stream, 8 * n_qs), dtype="<i8")
    return kind, ps, qs


def read_response(stream: BinaryIO) -> np.ndarray:
    """Read one response frame; raises :class:`WireServerError` on an
    error status and :class:`WireProtocolError` on a torn stream."""
    raw = _read_exact(stream, HEADER_SIZE)
    if raw is None:
        raise WireProtocolError("connection closed before the response frame")
    status, dtype_code, n_values, msg_len = _parse_header(raw)
    payload = _read_exact(stream, 8 * n_values) if n_values else b""
    message = _read_exact(stream, msg_len) if msg_len else b""
    if status != STATUS_OK:
        raise WireServerError(status, (message or b"").decode("utf-8", errors="replace"))
    dtype = _DTYPE_CODES.get(dtype_code)
    if dtype is None:
        raise WireProtocolError(f"unknown answer dtype code {dtype_code}")
    return np.frombuffer(payload, dtype=dtype)


class WireClient:
    """Pooled keep-alive client for the binary protocol.

    Connections are created lazily, checked out per call, and returned
    to the pool afterwards -- safe for concurrent use from ``pool_size``
    threads.  Each query method mirrors the
    :class:`~repro.serve.service.OracleService` API and returns the raw
    answer array (mask semantics included).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        pool_size: int = 1,
        timeout: float = 30.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.pool_size = max(1, pool_size)
        self._pool: list[socket.socket] = []
        self._lock = threading.Lock()

    # -- connection pool -------------------------------------------------

    def _connect(self) -> socket.socket:
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _checkout(self) -> socket.socket:
        with self._lock:
            if self._pool:
                return self._pool.pop()
        return self._connect()

    def _checkin(self, sock: socket.socket, broken: bool) -> None:
        if broken:
            try:
                sock.close()
            except OSError:
                pass
            return
        with self._lock:
            if len(self._pool) < self.pool_size:
                self._pool.append(sock)
                return
        sock.close()

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, []
        for sock in pool:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "WireClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- single-frame round trip ----------------------------------------

    def request(self, kind: str, ps: Any = None, qs: Any = None) -> np.ndarray:
        frame = encode_request(kind, ps, qs)
        sock = self._checkout()
        broken = True
        try:
            sock.sendall(frame)
            with sock.makefile("rb") as rfile:
                answer = read_response(rfile)
            broken = False
            return answer
        finally:
            self._checkin(sock, broken)

    def pipeline(self, frames: list[bytes]) -> list[np.ndarray]:
        """Send every pre-encoded frame, then read all responses in order.

        One connection, many frames in flight -- throughput is bounded
        by server work, not by per-frame round-trip latency.  Raises on
        the first error response (the remaining answers are discarded).
        """
        sock = self._checkout()
        broken = True
        try:
            sock.sendall(b"".join(frames))
            with sock.makefile("rb") as rfile:
                answers = [read_response(rfile) for _ in frames]
            broken = False
            return answers
        finally:
            self._checkin(sock, broken)

    # -- query conveniences ----------------------------------------------

    def degrees(self, ps: Any) -> np.ndarray:
        return self.request("degree", ps)

    def squares_at_vertices(self, ps: Any) -> np.ndarray:
        return self.request("vertex_squares", ps)

    def squares_at_edges(self, ps: Any, qs: Any) -> np.ndarray:
        """Batched edge squares; ``-1`` marks non-edges (mask semantics)."""
        return self.request("edge_squares", ps, qs)

    def wings_at_edges(self, ps: Any, qs: Any) -> np.ndarray:
        """Batched Rem. 1 wing upper bounds; ``-1`` marks non-edges."""
        return self.request("wings", ps, qs)

    def clustering_at_edges(self, ps: Any, qs: Any) -> np.ndarray:
        """Batched clustering; ``NaN`` marks out-of-domain pairs."""
        return self.request("clustering", ps, qs)

    def global_squares(self) -> int:
        return int(self.request("global")[0])
