"""Stdlib HTTP JSON API over an :class:`~repro.serve.service.OracleService`.

A ``ThreadingHTTPServer`` (one thread per connection, daemon threads)
whose handler speaks a small JSON protocol:

===========================  ======  =====================================
endpoint                     method  body / response
===========================  ======  =====================================
``/v1/degree``               POST    ``{"ps": [..]}`` → ``{"degrees": [..]}``
``/v1/squares/vertex``       POST    ``{"ps": [..]}`` → ``{"squares": [..]}``
``/v1/squares/edge``         POST    ``{"ps": [..], "qs": [..]}`` → ``{"squares": [..]}``
``/v1/wings``                POST    ``{"ps": [..], "qs": [..]}`` → ``{"wings": [..]}``
``/v1/clustering``           POST    ``{"ps": [..], "qs": [..]}`` → ``{"clustering": [..]}``
``/v1/global``               GET     ``{"squares": N}``
``/healthz``                 GET     liveness + artifact summary
``/metrics``                 GET     service tallies + obs snapshot (JSON)
``/metrics?format=prometheus``  GET  text exposition with quantiles
===========================  ======  =====================================

Scalar sugar: ``{"p": 3}`` / ``{"q": 7}`` are accepted anywhere a
one-element list would be.  Status mapping:

* **400** -- malformed request: invalid JSON, missing/extra keys,
  non-integer entries, mismatched ``ps``/``qs`` arity, out-of-range
  vertex ids.
* **422** -- well-formed but out of domain: a queried pair is not a
  product edge (or clustering is undefined there).  Mirrors the
  oracle's ``on_invalid="mask"`` semantics -- the response names the
  offending slots instead of poisoning the whole batch.
* **503** -- load shed (:class:`~repro.serve.service.Overloaded`),
  with a ``Retry-After`` header.

Every request is instrumented through :mod:`repro.obs` with labeled
series: a per-endpoint latency histogram
(``serve.http.latency_seconds{endpoint=...}``) and a response counter
by endpoint and status (``serve.http.responses_total{endpoint=...,
status=...}``).  ``repro serve`` installs a live registry
unconditionally, so these record in production — not only under
``--profile``.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional
from urllib.parse import parse_qs

import numpy as np

from repro.obs import get_metrics, render_prometheus
from repro.serve.service import INVALID_SQUARES, OracleService, Overloaded

__all__ = ["HandlerContext", "OracleHTTPServer", "build_server"]

PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Raw:
    """A non-JSON response body with an explicit content type."""

    __slots__ = ("body", "content_type")

    def __init__(self, body: str, content_type: str):
        self.body = body.encode("utf-8")
        self.content_type = content_type


class _HTTPError(Exception):
    """Internal: carry a status code + JSON payload up to the handler."""

    def __init__(self, status: int, payload: dict[str, Any]):
        super().__init__(payload.get("error", ""))
        self.status = status
        self.payload = payload


def _endpoint_label(path: str) -> str:
    return path.strip("/").replace("/", "_") or "root"


class OracleHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`OracleService`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: OracleService,
        info: Optional[dict[str, Any]] = None,
        worker_label: str = "0",
    ):
        super().__init__(address, _OracleHandler)
        self.service = service
        self.info = info or {}
        self.started_at = time.monotonic()
        #: Serving-process identity stamped on every prometheus sample
        #: (worker index under the pre-fork front end, "0" threaded) so
        #: multi-process scrapes never collide series when aggregated.
        self.worker_label = worker_label
        #: Flipped during graceful shutdown: responses carry
        #: ``Connection: close`` so keep-alive clients release promptly.
        self.draining = False


class HandlerContext:
    """Duck-typed stand-in for :class:`OracleHTTPServer` per connection.

    :class:`_OracleHandler` only reads ``service`` / ``info`` /
    ``started_at`` / ``worker_label`` / ``draining`` from its server, so
    the pre-fork front end (:mod:`repro.serve.prefork`) handles accepted
    sockets by instantiating the handler directly against one of these
    -- same routing, same obs series, no ``ThreadingHTTPServer``.
    """

    __slots__ = ("service", "info", "started_at", "worker_label", "draining")

    def __init__(
        self,
        service: OracleService,
        info: Optional[dict[str, Any]] = None,
        worker_label: str = "0",
    ):
        self.service = service
        self.info = info or {}
        self.started_at = time.monotonic()
        self.worker_label = worker_label
        self.draining = False

    def handle_connection(self, conn, addr) -> None:
        """Run the keep-alive HTTP request loop on an accepted socket."""
        _OracleHandler(conn, addr, self)


class _OracleHandler(BaseHTTPRequestHandler):
    server: OracleHTTPServer
    protocol_version = "HTTP/1.1"
    # The default handler logs every request to stderr; the obs layer
    # already counts and times them, so stay quiet.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def do_GET(self) -> None:
        self._handle("GET")

    def do_POST(self) -> None:
        self._handle("POST")

    def _handle(self, method: str) -> None:
        t0 = time.perf_counter()
        path, _, raw_query = self.path.partition("?")
        status = 500
        try:
            # Always drain the body first: with HTTP/1.1 keep-alive an
            # unread body would desync the next request on the socket.
            self._body = self._read_body()
            status, payload = self._route(method, path, parse_qs(raw_query))
        except _HTTPError as exc:
            status, payload = exc.status, exc.payload
        except Overloaded as exc:
            status, payload = 503, {"error": str(exc)}
        except (ValueError, IndexError) as exc:
            status, payload = 400, {"error": str(exc)}
        except Exception as exc:  # pragma: no cover - defensive
            status, payload = 500, {"error": f"internal error: {exc}"}
        finally:
            metrics = get_metrics()
            label = _endpoint_label(path)
            metrics.histogram("serve.http.latency_seconds", endpoint=label).observe(
                time.perf_counter() - t0
            )
            metrics.counter(
                "serve.http.responses_total", endpoint=label, status=str(status)
            ).inc()
        if getattr(self.server, "draining", False):
            # Graceful shutdown: finish this response, then release the
            # keep-alive connection so the worker can exit.
            self.close_connection = True
        self._send(status, payload)

    def _route(
        self, method: str, path: str, query: dict[str, list[str]]
    ) -> tuple[int, dict[str, Any] | _Raw]:
        service = self.server.service
        if path == "/healthz":
            self._require_method(method, "GET")
            return 200, {
                "status": "ok",
                "uptime_s": round(time.monotonic() - self.server.started_at, 3),
                "artifact": self.server.info,
                "queue_depth": service.queue_depth(),
                "worker": getattr(self.server, "worker_label", "0"),
            }
        if path == "/metrics":
            self._require_method(method, "GET")
            fmt = (query.get("format") or ["json"])[-1]
            if fmt == "prometheus":
                stats = service.stats()
                text = render_prometheus(
                    get_metrics().snapshot(),
                    extra_gauges={f"serve.service.{k}": v for k, v in stats.items()},
                    const_labels={"worker": getattr(self.server, "worker_label", "0")},
                )
                return 200, _Raw(text, PROM_CONTENT_TYPE)
            if fmt != "json":
                raise _HTTPError(
                    400, {"error": f"unknown format {fmt!r} (expected json or prometheus)"}
                )
            return 200, {"service": service.stats(), "metrics": get_metrics().snapshot()}
        if path == "/v1/global":
            self._require_method(method, "GET")
            return 200, {"squares": service.global_squares()}
        if path == "/v1/degree":
            self._require_method(method, "POST")
            ps = self._read_indices(keys=("ps",))[0]
            return 200, {"degrees": service.degrees(ps).tolist()}
        if path == "/v1/squares/vertex":
            self._require_method(method, "POST")
            ps = self._read_indices(keys=("ps",))[0]
            return 200, {"squares": service.squares_at_vertices(ps).tolist()}
        if path == "/v1/squares/edge":
            self._require_method(method, "POST")
            ps, qs = self._read_indices(keys=("ps", "qs"))
            values = service.squares_at_edges(ps, qs)
            invalid = np.flatnonzero(values == INVALID_SQUARES)
            if invalid.size:
                raise _HTTPError(422, self._invalid_payload(ps, qs, invalid))
            return 200, {"squares": values.tolist()}
        if path == "/v1/wings":
            self._require_method(method, "POST")
            ps, qs = self._read_indices(keys=("ps", "qs"))
            values = service.wings_at_edges(ps, qs)
            invalid = np.flatnonzero(values == INVALID_SQUARES)
            if invalid.size:
                raise _HTTPError(422, self._invalid_payload(ps, qs, invalid))
            return 200, {"wings": values.tolist()}
        if path == "/v1/clustering":
            self._require_method(method, "POST")
            ps, qs = self._read_indices(keys=("ps", "qs"))
            values = service.clustering_at_edges(ps, qs)
            invalid = np.flatnonzero(np.isnan(values))
            if invalid.size:
                raise _HTTPError(422, self._invalid_payload(ps, qs, invalid))
            return 200, {"clustering": values.tolist()}
        raise _HTTPError(404, {"error": f"unknown endpoint {path}"})

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------

    def _require_method(self, method: str, expected: str) -> None:
        if method != expected:
            raise _HTTPError(405, {"error": f"use {expected} for this endpoint"})

    def _read_body(self) -> bytes:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            raise _HTTPError(400, {"error": "bad Content-Length header"}) from None
        return self.rfile.read(length) if length > 0 else b""

    def _read_indices(self, keys: tuple[str, ...]) -> list[list[int]]:
        """Parse the JSON body into one index list per key (400 on any
        malformed shape; scalar ``p``/``q`` sugar accepted)."""
        raw = self._body
        try:
            body = json.loads(raw.decode("utf-8")) if raw else {}
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _HTTPError(400, {"error": f"request body is not valid JSON: {exc}"}) from exc
        if not isinstance(body, dict):
            raise _HTTPError(400, {"error": "request body must be a JSON object"})
        known = set()
        for key in keys:
            known.update((key, key.rstrip("s")))
        extra = set(body) - known
        if extra:
            raise _HTTPError(
                400, {"error": f"unexpected keys {sorted(extra)} (expected {sorted(keys)})"}
            )
        out: list[list[int]] = []
        for key in keys:
            scalar = key.rstrip("s")
            if key in body and scalar in body:
                raise _HTTPError(400, {"error": f"pass either {key!r} or {scalar!r}, not both"})
            if scalar in body:
                values: Any = [body[scalar]]
            elif key in body:
                values = body[key]
            else:
                raise _HTTPError(400, {"error": f"missing required key {key!r}"})
            if not isinstance(values, list):
                raise _HTTPError(400, {"error": f"{key!r} must be a JSON list of vertex ids"})
            if not all(isinstance(v, int) and not isinstance(v, bool) for v in values):
                raise _HTTPError(400, {"error": f"{key!r} must contain integers only"})
            out.append(values)
        if len(out) == 2 and len(out[0]) != len(out[1]):
            raise _HTTPError(
                400,
                {"error": f"ps and qs must match in length: {len(out[0])} vs {len(out[1])}"},
            )
        return out

    def _invalid_payload(self, ps: list, qs: list, invalid: np.ndarray) -> dict[str, Any]:
        slots = invalid.tolist()
        return {
            "error": "query out of domain: pairs are not product edges "
            "(or clustering is undefined there)",
            "invalid": slots,
            "pairs": [[ps[i], qs[i]] for i in slots[:16]],
        }

    def _send(self, status: int, payload: dict[str, Any] | _Raw) -> None:
        if isinstance(payload, _Raw):
            body = payload.body
            content_type = payload.content_type
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            if status == 503:
                self.send_header("Retry-After", "1")
            if self.close_connection:
                self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass


def build_server(
    service: OracleService,
    host: str = "127.0.0.1",
    port: int = 0,
    info: Optional[dict[str, Any]] = None,
) -> OracleHTTPServer:
    """Bind (but do not run) the JSON API server.

    ``port=0`` binds an ephemeral port; read the actual one from
    ``server.server_address``.  Call ``serve_forever()`` (blocking) or
    drive it from a thread; ``shutdown()`` + ``server_close()`` to stop.
    """
    return OracleHTTPServer((host, port), service, info=info)
