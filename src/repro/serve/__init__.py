"""Oracle serving layer: persistent artifacts + concurrent query service.

The ROADMAP's north star is a long-lived system answering ground-truth
queries (Thms. 3-5 vertex/edge 4-cycle counts, Def. 10 clustering) for
heavy traffic.  The paper makes that cheap -- every answer comes from
factor-sized statistics, never from the materialized product -- and
this package turns the in-memory :class:`~repro.kronecker.oracle.GroundTruthOracle`
into infrastructure:

* :mod:`repro.serve.artifact` -- a versioned, checksummed on-disk
  oracle artifact (schema ``repro.serve/1``): ``save_oracle`` /
  ``load_oracle`` round-trip every factor statistic and kernel
  coefficient so a server boots without recomputing anything.
* :mod:`repro.serve.service` -- :class:`OracleService`, an in-process
  front-end over the batched oracle APIs with request micro-batching,
  an LRU result cache, and bounded-queue backpressure (typed
  :class:`Overloaded` load-shedding).
* :mod:`repro.serve.http` -- a stdlib ``ThreadingHTTPServer`` JSON API
  (``/v1/degree``, ``/v1/squares/vertex``, ``/v1/squares/edge``,
  ``/v1/clustering``, ``/v1/global``, ``/healthz``, ``/metrics``),
  fully instrumented through :mod:`repro.obs`.

CLI: ``python -m repro pack`` builds artifacts from factor specs;
``python -m repro serve`` boots the HTTP server.  See docs/serving.md
for the artifact format, endpoint reference, and capacity numbers.
"""

from repro.serve.artifact import (
    ARTIFACT_SCHEMA,
    ORACLE_FILE,
    SIDECAR_FILE,
    ArtifactError,
    ArtifactIntegrityError,
    artifact_info,
    load_oracle,
    oracle_arrays,
    save_oracle,
)
from repro.serve.http import OracleHTTPServer, build_server
from repro.serve.service import INVALID_SQUARES, OracleService, Overloaded

__all__ = [
    "ARTIFACT_SCHEMA",
    "ORACLE_FILE",
    "SIDECAR_FILE",
    "ArtifactError",
    "ArtifactIntegrityError",
    "artifact_info",
    "load_oracle",
    "oracle_arrays",
    "save_oracle",
    "INVALID_SQUARES",
    "OracleService",
    "Overloaded",
    "OracleHTTPServer",
    "build_server",
]
