"""Oracle serving layer: persistent artifacts + concurrent query service.

The ROADMAP's north star is a long-lived system answering ground-truth
queries (Thms. 3-5 vertex/edge 4-cycle counts, Def. 10 clustering) for
heavy traffic.  The paper makes that cheap -- every answer comes from
factor-sized statistics, never from the materialized product -- and
this package turns the in-memory :class:`~repro.kronecker.oracle.GroundTruthOracle`
into infrastructure:

* :mod:`repro.serve.artifact` -- a versioned, checksummed on-disk
  oracle artifact (schema ``repro.serve/1``): ``save_oracle`` /
  ``load_oracle`` round-trip every factor statistic and kernel
  coefficient so a server boots without recomputing anything;
  ``load_oracle(..., mmap=True)`` maps the arrays zero-copy for
  multi-process sharing.
* :mod:`repro.serve.service` -- :class:`OracleService`, an in-process
  front-end over the batched oracle APIs with request micro-batching,
  an LRU result cache, and bounded-queue backpressure (typed
  :class:`Overloaded` load-shedding).
* :mod:`repro.serve.http` -- a stdlib ``ThreadingHTTPServer`` JSON API
  (``/v1/degree``, ``/v1/squares/vertex``, ``/v1/squares/edge``,
  ``/v1/clustering``, ``/v1/global``, ``/healthz``, ``/metrics``),
  fully instrumented through :mod:`repro.obs`.
* :mod:`repro.serve.wire` -- the compact length-prefixed binary batch
  protocol (schema ``repro.wire/1``) plus the pooled
  :class:`~repro.serve.wire.WireClient`.
* :mod:`repro.serve.prefork` -- the pre-fork multi-process front end:
  N workers sharing one mmap'd oracle and one listening socket, JSON
  and wire sniffed on the same port, SIGTERM drain, respawn-on-crash,
  per-worker metrics merged on shutdown.

CLI: ``python -m repro pack`` builds artifacts from factor specs;
``python -m repro serve`` boots the threaded HTTP server and
``python -m repro serve --workers-procs N`` the pre-fork front end.
See docs/serving.md for the artifact format, endpoint/wire reference,
and capacity numbers.
"""

from repro.serve.artifact import (
    ARTIFACT_SCHEMA,
    ORACLE_FILE,
    SIDECAR_FILE,
    ArtifactError,
    ArtifactIntegrityError,
    artifact_info,
    load_oracle,
    oracle_arrays,
    save_oracle,
)
from repro.serve.http import HandlerContext, OracleHTTPServer, build_server
from repro.serve.prefork import PreforkServer
from repro.serve.service import INVALID_SQUARES, OracleService, Overloaded
from repro.serve.wire import WireClient

__all__ = [
    "ARTIFACT_SCHEMA",
    "ORACLE_FILE",
    "SIDECAR_FILE",
    "ArtifactError",
    "ArtifactIntegrityError",
    "artifact_info",
    "load_oracle",
    "oracle_arrays",
    "save_oracle",
    "INVALID_SQUARES",
    "OracleService",
    "Overloaded",
    "HandlerContext",
    "OracleHTTPServer",
    "build_server",
    "PreforkServer",
    "WireClient",
]
