"""In-process oracle serving: micro-batched queries, LRU cache, backpressure.

:class:`OracleService` sits between callers (the HTTP layer, benches,
or library users) and a :class:`~repro.kronecker.oracle.GroundTruthOracle`.
Three mechanisms turn the oracle's batched kernels into a service that
degrades gracefully under heavy traffic instead of falling over:

* **Micro-batching / coalescing.**  Requests land in a queue; worker
  threads drain up to ``max_batch`` queued query elements at a time,
  group them by kind, and answer each group with *one* fused kernel
  call (``degrees`` / ``squares_at_vertices`` / ``squares_at_edges``).
  Concurrent small requests ride the same vectorized pass -- the
  element-wise kernels make the coalesced answers bit-identical to
  per-request calls.
* **LRU result cache.**  Identical requests (same kind + same index
  arrays) are answered from an ``OrderedDict`` LRU without touching
  the queue; hits and misses are counted both locally (:meth:`stats`)
  and through :mod:`repro.obs`.
* **Bounded-queue backpressure.**  Past ``max_queue`` outstanding
  requests, :meth:`submit` sheds the request with a typed
  :class:`Overloaded` error (HTTP 503 upstream) instead of letting
  latency grow without bound.

Non-edges follow the oracle's ``on_invalid="mask"`` semantics: the
answer array carries :data:`INVALID_SQUARES` (``-1``; ``NaN`` for
clustering) at invalid slots, and the HTTP layer maps any invalid slot
to 422.  See docs/serving.md for tuning guidance.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Any, Optional

import numpy as np

from repro.kronecker.oracle import GroundTruthOracle
from repro.obs import get_events, get_metrics

__all__ = ["INVALID_SQUARES", "Overloaded", "OracleService"]

#: Sentinel for non-edge slots in integer answers (counts are never negative).
INVALID_SQUARES = -1

_KINDS = ("degree", "vertex_squares", "edge_squares", "clustering", "global", "wings")
_PAIR_KINDS = ("edge_squares", "clustering", "wings")


class Overloaded(RuntimeError):
    """Request shed: the service queue is at ``max_queue`` depth.

    The typed load-shedding error -- callers should back off and retry;
    the HTTP layer maps it to 503 with a ``Retry-After`` hint.
    """


class _Request:
    """One queued query batch: inputs, completion event, outcome."""

    __slots__ = ("kind", "ps", "qs", "event", "result", "error", "cache_key")

    def __init__(
        self,
        kind: str,
        ps: Optional[np.ndarray],
        qs: Optional[np.ndarray],
        cache_key: Optional[tuple] = None,
    ):
        self.kind = kind
        self.ps = ps
        self.qs = qs
        self.cache_key = cache_key
        self.event = threading.Event()
        self.result: Any = None
        self.error: Optional[BaseException] = None

    @property
    def size(self) -> int:
        return int(self.ps.size) if self.ps is not None else 1

    def wait(self, timeout: Optional[float] = None) -> Any:
        """Block until the worker resolves this request; re-raise its error."""
        if not self.event.wait(timeout):
            raise TimeoutError(f"{self.kind} request not answered within {timeout}s")
        if self.error is not None:
            raise self.error
        return self.result


class OracleService:
    """Concurrent front-end over a ground-truth oracle.

    Parameters
    ----------
    oracle:
        The oracle to serve.
    max_queue:
        Outstanding-request bound; further submissions shed with
        :class:`Overloaded`.  ``0`` sheds everything (drill mode).
    max_batch:
        Upper bound on query *elements* coalesced into one kernel pass.
    cache_size:
        LRU entries to keep (``0`` disables the cache).
    workers:
        Batcher threads.  One is enough until kernel time dominates;
        more let independent kinds proceed in parallel.
    """

    def __init__(
        self,
        oracle: GroundTruthOracle,
        *,
        max_queue: int = 1024,
        max_batch: int = 65536,
        cache_size: int = 4096,
        workers: int = 1,
    ):
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.oracle = oracle
        self.max_queue = max_queue
        self.max_batch = max(1, max_batch)
        self.cache_size = cache_size
        self._n_workers = workers
        self._pending: deque[_Request] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._threads: list[threading.Thread] = []
        self._stopped = False
        self._cache: "OrderedDict[tuple, Any]" = OrderedDict()
        self._global: Optional[int] = None
        # Local tallies (always on) + obs metrics (no-ops unless enabled).
        self._counts = {
            "requests": 0, "queries": 0, "hits": 0, "misses": 0,
            "shed": 0, "batches": 0, "invalid": 0,
        }
        metrics = get_metrics()
        self._events = get_events()
        self._m_requests = metrics.counter("serve.requests_total")
        self._m_queries = metrics.counter("serve.queries_total")
        self._m_hits = metrics.counter("serve.cache_hits_total")
        self._m_misses = metrics.counter("serve.cache_misses_total")
        self._m_shed = metrics.counter("serve.shed_total")
        self._m_batches = metrics.counter("serve.batches_total")
        self._m_batch_size = metrics.histogram("serve.batch_queries")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "OracleService":
        """Spawn the batcher threads (idempotent)."""
        with self._lock:
            if self._threads:
                return self
            self._stopped = False
            self._threads = [
                threading.Thread(target=self._worker_loop, name=f"oracle-serve-{i}", daemon=True)
                for i in range(self._n_workers)
            ]
        for t in self._threads:
            t.start()
        return self

    def stop(self) -> None:
        """Stop the batchers; pending requests fail with :class:`Overloaded`."""
        with self._lock:
            self._stopped = True
            drained = list(self._pending)
            self._pending.clear()
            self._not_empty.notify_all()
        for req in drained:
            req.error = Overloaded("service stopped before the request was answered")
            req.event.set()
        for t in self._threads:
            t.join(timeout=5.0)
        self._threads = []

    def __enter__(self) -> "OracleService":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def _coerce(self, values: Any, name: str) -> np.ndarray:
        arr = np.asarray(values)
        if arr.dtype == object or not np.issubdtype(arr.dtype, np.integer):
            # Reject floats/strings/bools explicitly; int-valued lists pass.
            if arr.dtype == bool or not np.issubdtype(arr.dtype, np.number):
                raise ValueError(f"{name} must contain integers, got dtype {arr.dtype}")
            as_int = arr.astype(np.int64)
            if not np.array_equal(as_int, arr):
                raise ValueError(f"{name} must contain integers, got {arr.dtype} values")
            arr = as_int
        arr = arr.astype(np.int64, copy=False)
        if arr.ndim != 1:
            raise ValueError(f"{name} must be a flat index list, got shape {arr.shape}")
        if arr.size and (int(arr.min()) < 0 or int(arr.max()) >= self.oracle.bk.n):
            bad = arr[(arr < 0) | (arr >= self.oracle.bk.n)][0]
            raise IndexError(
                f"product vertex {int(bad)} out of range [0, {self.oracle.bk.n})"
            )
        return arr

    def _validate(
        self, kind: str, ps: Any, qs: Any
    ) -> tuple[Optional[np.ndarray], Optional[np.ndarray], tuple]:
        """Shared request validation: ``(ps_arr, qs_arr, cache_key)``."""
        if kind not in _KINDS:
            raise ValueError(f"unknown query kind {kind!r} (expected one of {_KINDS})")
        if kind == "global":
            return None, None, ("global",)
        if ps is None:
            raise ValueError(f"{kind} queries need a ps index list")
        ps_arr = self._coerce(ps, "ps")
        if kind in _PAIR_KINDS:
            if qs is None:
                raise ValueError(f"{kind} queries need both ps and qs index lists")
            qs_arr = self._coerce(qs, "qs")
            if ps_arr.shape != qs_arr.shape:
                raise ValueError(
                    f"ps and qs must match in length: {ps_arr.size} vs {qs_arr.size}"
                )
        else:
            if qs is not None:
                raise ValueError(f"{kind} queries take only ps, got a qs list too")
            qs_arr = None
        key = (
            kind,
            ps_arr.tobytes(),
            qs_arr.tobytes() if qs_arr is not None else b"",
        )
        return ps_arr, qs_arr, key

    def submit(self, kind: str, ps: Any = None, qs: Any = None) -> _Request:
        """Validate, cache-check, and enqueue one request.

        Returns a :class:`_Request` handle whose :meth:`_Request.wait`
        yields the answer.  Raises ``ValueError``/``IndexError``
        synchronously on malformed input (the caller's fault, HTTP 400)
        and :class:`Overloaded` when the queue is saturated (503).
        Cache hits resolve immediately without touching the queue.
        """
        ps_arr, qs_arr, key = self._validate(kind, ps, qs)
        req = _Request(kind, ps_arr, qs_arr, cache_key=key)
        self._counts["requests"] += 1
        self._counts["queries"] += req.size
        self._m_requests.inc()
        self._m_queries.inc(req.size)
        cached = self._cache_get(key)
        if cached is not None:
            req.result = cached
            req.event.set()
            return req
        with self._lock:
            if self._stopped:
                raise Overloaded("service is stopped")
            if len(self._pending) >= self.max_queue:
                self._counts["shed"] += 1
                self._m_shed.inc()
                if self._events.enabled:
                    self._events.emit(
                        "serve.queue_shed",
                        kind=kind,
                        depth=len(self._pending),
                        max_queue=self.max_queue,
                    )
                raise Overloaded(
                    f"queue depth {len(self._pending)} at max_queue={self.max_queue}; "
                    "back off and retry"
                )
            self._pending.append(req)
            self._not_empty.notify()
        return req

    def answer(self, kind: str, ps: Any = None, qs: Any = None) -> Any:
        """Answer one request synchronously on the caller's thread.

        The queue-free fast path behind the binary wire protocol
        (:mod:`repro.serve.prefork`): identical validation, LRU cache,
        masking semantics, and request/query/hit/miss tallies as the
        :meth:`submit` path, but without the batcher hand-off -- one
        kernel call, no :class:`threading.Event` round trip.  Coalescing
        is the *client's* job on this path (send batched index arrays);
        the per-frame latency saved is what lets a pre-fork worker push
        tens of thousands of frames per second.  Does not require
        :meth:`start` and never sheds (there is no queue to saturate).
        """
        ps_arr, qs_arr, key = self._validate(kind, ps, qs)
        self._counts["requests"] += 1
        size = int(ps_arr.size) if ps_arr is not None else 1
        self._counts["queries"] += size
        self._m_requests.inc()
        self._m_queries.inc(size)
        cached = self._cache_get(key)
        if cached is not None:
            return cached
        if kind == "global":
            if self._global is None:
                self._global = int(self.oracle.global_squares())
            result: Any = self._global
        else:
            result = self._compute(kind, ps_arr, qs_arr)
        self._cache_put(key, result)
        return result

    # ------------------------------------------------------------------
    # Cache
    # ------------------------------------------------------------------

    def _cache_get(self, key: tuple) -> Any:
        if not self.cache_size:
            self._counts["misses"] += 1
            self._m_misses.inc()
            return None
        with self._lock:
            if key in self._cache:
                self._cache.move_to_end(key)
                self._counts["hits"] += 1
                self._m_hits.inc()
                return self._cache[key]
        self._counts["misses"] += 1
        self._m_misses.inc()
        return None

    def _cache_put(self, key: tuple, value: Any) -> None:
        if not self.cache_size:
            return
        evicted = 0
        with self._lock:
            self._cache[key] = value
            self._cache.move_to_end(key)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
                evicted += 1
        if evicted and self._events.enabled:
            self._events.emit(
                "serve.cache_evicted", entries=evicted, cache_size=self.cache_size
            )

    # ------------------------------------------------------------------
    # Batcher
    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._not_empty:
                while not self._pending and not self._stopped:
                    self._not_empty.wait()
                if self._stopped and not self._pending:
                    return
                batch: list[_Request] = []
                elements = 0
                while self._pending and elements < self.max_batch:
                    req = self._pending.popleft()
                    batch.append(req)
                    elements += req.size
            self._counts["batches"] += 1
            self._m_batches.inc()
            self._m_batch_size.observe(elements)
            groups: dict[str, list[_Request]] = {}
            for req in batch:
                groups.setdefault(req.kind, []).append(req)
            for kind, reqs in groups.items():
                try:
                    self._execute(kind, reqs)
                except BaseException as exc:  # pragma: no cover - defensive
                    for req in reqs:
                        req.error = exc
                finally:
                    for req in reqs:
                        req.event.set()

    def _compute(self, kind: str, ps: np.ndarray, qs: Optional[np.ndarray]) -> np.ndarray:
        """One fused kernel pass for validated index arrays of ``kind``."""
        if kind == "degree":
            return self.oracle.degrees(ps)
        if kind == "vertex_squares":
            return self.oracle.squares_at_vertices(ps)
        if kind == "edge_squares":
            dia = self.oracle.squares_at_edges(ps, qs, on_invalid="mask")
            self._counts["invalid"] += int((dia == INVALID_SQUARES).sum())
            return dia
        if kind == "wings":
            bounds = self.oracle.wings_at_edges(ps, qs, on_invalid="mask")
            self._counts["invalid"] += int((bounds == INVALID_SQUARES).sum())
            return bounds
        # clustering -- NaN masking delegated to the oracle/backend
        out = self.oracle.clustering_at_edges(ps, qs)
        self._counts["invalid"] += int(np.isnan(out).sum())
        return out

    def _execute(self, kind: str, reqs: list[_Request]) -> None:
        """Answer every request of ``kind`` with one coalesced kernel pass."""
        if kind == "global":
            if self._global is None:
                self._global = int(self.oracle.global_squares())
            for req in reqs:
                req.result = self._global
                self._store(req)
            return
        ps = np.concatenate([req.ps for req in reqs]) if len(reqs) > 1 else reqs[0].ps
        if kind in _PAIR_KINDS:
            qs = np.concatenate([req.qs for req in reqs]) if len(reqs) > 1 else reqs[0].qs
        else:
            qs = None
        out = self._compute(kind, ps, qs)
        offset = 0
        for req in reqs:
            req.result = out[offset : offset + req.size]
            offset += req.size
            self._store(req)

    def _store(self, req: _Request) -> None:
        if req.cache_key is not None:
            self._cache_put(req.cache_key, req.result)

    # ------------------------------------------------------------------
    # Public query API (synchronous conveniences)
    # ------------------------------------------------------------------

    def degrees(self, ps: Any, timeout: Optional[float] = 30.0) -> np.ndarray:
        """Batched product degrees; coalesced with concurrent requests."""
        return self.submit("degree", ps).wait(timeout)

    def squares_at_vertices(self, ps: Any, timeout: Optional[float] = 30.0) -> np.ndarray:
        """Batched Thm. 3/4 vertex 4-cycle counts."""
        return self.submit("vertex_squares", ps).wait(timeout)

    def squares_at_edges(self, ps: Any, qs: Any, timeout: Optional[float] = 30.0) -> np.ndarray:
        """Batched Thm. 5 edge 4-cycle counts; ``-1`` marks non-edges."""
        return self.submit("edge_squares", ps, qs).wait(timeout)

    def wings_at_edges(self, ps: Any, qs: Any, timeout: Optional[float] = 30.0) -> np.ndarray:
        """Batched Rem. 1 wing upper bounds; ``-1`` marks non-edges."""
        return self.submit("wings", ps, qs).wait(timeout)

    def clustering_at_edges(self, ps: Any, qs: Any, timeout: Optional[float] = 30.0) -> np.ndarray:
        """Batched Def. 10 clustering; ``NaN`` marks out-of-domain pairs."""
        return self.submit("clustering", ps, qs).wait(timeout)

    def global_squares(self, timeout: Optional[float] = 30.0) -> int:
        """Total product 4-cycles (memoized after the first request)."""
        return int(self.submit("global").wait(timeout))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def queue_depth(self) -> int:
        with self._lock:
            return len(self._pending)

    def stats(self) -> dict[str, int]:
        """Service tallies: requests/queries served, cache hits/misses,
        shed requests, kernel batches, invalid (masked) slots."""
        counts = dict(self._counts)
        counts["queue_depth"] = self.queue_depth()
        counts["cache_entries"] = len(self._cache)
        return counts
