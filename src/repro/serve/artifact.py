"""Versioned, checksummed on-disk oracle artifacts (schema ``repro.serve/1``).

An artifact is a directory holding two files:

* ``oracle.npz`` -- every array the oracle needs: both factors'
  statistics (``d``, ``w2``, ``s``, ``cw4``, the ``◇`` edge-square
  matrix and the adjacency itself, each as CSR triples), the right
  factor's bipartition mask, and the precomputed vertex-kernel
  coefficient matrices ``L``/``R``.
* ``artifact.json`` -- the sidecar: schema tag, assumption flag,
  product/factor shapes, and a ``sha256:`` **content checksum** over
  the arrays (name, dtype, shape, raw bytes -- the
  :func:`repro.parallel.manifest.checksum_arrays` convention, so zip
  container timestamps never matter).

Both files are written atomically (temp name + ``os.replace``), so a
crash mid-``pack`` never leaves a torn artifact.  :func:`load_oracle`
verifies the checksum and the schema tag before reconstructing a
:class:`~repro.kronecker.oracle.GroundTruthOracle` via
:meth:`~repro.kronecker.oracle.GroundTruthOracle.from_factor_stats` --
no sparse ``A²`` products are recomputed, so a server boots in
O(artifact size) and answers are bit-identical to the oracle that was
saved (asserted in tests/serve and in ``benchmarks/bench_serve.py``).

**Zero-copy serving.**  The npz container is written *uncompressed*
(``np.savez``), so every member ``.npy`` sits contiguously in the file
and ``load_oracle(..., mmap=True)`` can hand back ``np.memmap`` views
instead of materialized copies: the CSR triplets, stats vectors, and
coefficient stacks stay page-cache-backed, read-only, and **shared**
across every process that maps the same artifact -- the substrate of
the pre-fork server (:mod:`repro.serve.prefork`), where N workers serve
one mapped oracle with flat per-worker memory.  The sidecar checksum is
still verified against the mapped bytes before the oracle is built.
Legacy compressed artifacts keep loading (eagerly, with a warning under
``mmap=True``) -- a compressed zip member cannot be mapped.
"""

from __future__ import annotations

import json
import os
import struct
import warnings
import zipfile
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Union

import numpy as np
import scipy.sparse as sp

from repro.kronecker.assumptions import Assumption
from repro.kronecker.ground_truth import FactorStats
from repro.kronecker.oracle import GroundTruthOracle
from repro.obs import get_tracer
from repro.parallel.manifest import checksum_arrays

__all__ = [
    "ARTIFACT_SCHEMA",
    "ORACLE_FILE",
    "SIDECAR_FILE",
    "ArtifactError",
    "ArtifactIntegrityError",
    "oracle_arrays",
    "save_oracle",
    "load_oracle",
    "artifact_info",
]

PathLike = Union[str, os.PathLike]

#: Schema tag gating artifact evolution; bump on incompatible layout changes.
ARTIFACT_SCHEMA = "repro.serve/1"
ORACLE_FILE = "oracle.npz"
SIDECAR_FILE = "artifact.json"

_CSR_PARTS = ("data", "indices", "indptr")
_STATS_VECTORS = ("d", "w2", "s", "cw4")


class ArtifactError(ValueError):
    """Artifact is missing, malformed, or from an unsupported schema."""


class ArtifactIntegrityError(ArtifactError):
    """Artifact content disagrees with its recorded checksum."""


def _utcnow() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def _csr_arrays(name: str, mat: sp.csr_array) -> dict[str, np.ndarray]:
    return {
        f"{name}_data": np.asarray(mat.data),
        f"{name}_indices": np.asarray(mat.indices),
        f"{name}_indptr": np.asarray(mat.indptr),
    }


def _csr_from(arrays: Any, name: str, n: int) -> sp.csr_array:
    try:
        parts = tuple(arrays[f"{name}_{part}"] for part in _CSR_PARTS)
    except KeyError as exc:
        raise ArtifactError(f"artifact is missing CSR array {name}_{exc.args[0]}") from exc
    return sp.csr_array((parts[0], parts[1], parts[2]), shape=(n, n))


def _stats_arrays(prefix: str, stats: FactorStats) -> dict[str, np.ndarray]:
    arrays: dict[str, np.ndarray] = {
        f"{prefix}_{field}": getattr(stats, field) for field in _STATS_VECTORS
    }
    arrays.update(_csr_arrays(f"{prefix}_diamond", stats.diamond))
    arrays.update(_csr_arrays(f"{prefix}_adj", stats.adj))
    return arrays


def _stats_from(arrays: Any, prefix: str, n: int) -> FactorStats:
    try:
        vectors = {field: np.asarray(arrays[f"{prefix}_{field}"]) for field in _STATS_VECTORS}
    except KeyError as exc:
        raise ArtifactError(f"artifact is missing factor array {prefix}_{exc.args[0]}") from exc
    return FactorStats(
        n=n,
        diamond=_csr_from(arrays, f"{prefix}_diamond", n),
        adj=_csr_from(arrays, f"{prefix}_adj", n),
        **vectors,
    )


def oracle_arrays(oracle: GroundTruthOracle) -> dict[str, np.ndarray]:
    """Every array :func:`save_oracle` persists, keyed by artifact name.

    Factor statistics for both factors, the right factor's bipartition
    mask, and the vertex-kernel coefficient stacks.  The checksum in the
    sidecar is :func:`~repro.parallel.manifest.checksum_arrays` over
    exactly this mapping.
    """
    stats_a, stats_b, part_b, _ = oracle.artifact_state()
    vertex_l, vertex_r = oracle._term_matrices
    arrays = _stats_arrays("a", stats_a)
    arrays.update(_stats_arrays("b", stats_b))
    arrays["part_b"] = np.asarray(part_b, dtype=bool)
    arrays["vertex_L"] = np.asarray(vertex_l)
    arrays["vertex_R"] = np.asarray(vertex_r)
    return arrays


def save_oracle(oracle: GroundTruthOracle, out_dir: PathLike) -> Path:
    """Persist ``oracle`` as a checksummed artifact directory.

    Writes ``oracle.npz`` and the ``artifact.json`` sidecar, each via a
    temp name + ``os.replace`` so readers never observe a torn file.
    Returns the artifact directory path.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    stats_a, stats_b, _, assumption = oracle.artifact_state()
    arrays = oracle_arrays(oracle)
    with get_tracer().span("serve.pack", n=oracle.bk.n, m=oracle.bk.m):
        npz_path = out_dir / ORACLE_FILE
        tmp = npz_path.with_name(npz_path.name + ".tmp")
        try:
            with open(tmp, "wb") as fh:
                # Uncompressed on purpose: stored zip members are the
                # raw .npy bytes at a fixed offset, which is what lets
                # load_oracle(mmap=True) map them zero-copy.
                np.savez(fh, **arrays)
            os.replace(tmp, npz_path)
        finally:
            tmp.unlink(missing_ok=True)
        sidecar = {
            "schema": ARTIFACT_SCHEMA,
            "created_at": _utcnow(),
            "storage": "npz-stored",
            "checksum": checksum_arrays(arrays),
            # Which kernel backend computed the packed arrays: array
            # content is bit-identical across backends by contract, but
            # a divergence investigation needs the provenance recorded.
            "kernel_backend": oracle.backend_name,
            "assumption": assumption.name,
            "product": {"n": int(oracle.bk.n), "m": int(oracle.bk.m)},
            "factors": {
                "a": {"n": int(stats_a.n), "nnz": int(stats_a.adj.nnz)},
                "b": {"n": int(stats_b.n), "nnz": int(stats_b.adj.nnz)},
            },
            "arrays": sorted(arrays),
            "oracle_bytes": int(npz_path.stat().st_size),
        }
        sidecar_path = out_dir / SIDECAR_FILE
        tmp = sidecar_path.with_name(sidecar_path.name + ".tmp")
        tmp.write_text(json.dumps(sidecar, indent=2) + "\n", encoding="utf-8")
        os.replace(tmp, sidecar_path)
    return out_dir


def artifact_info(path: PathLike) -> dict[str, Any]:
    """Load and schema-check an artifact's JSON sidecar."""
    path = Path(path)
    sidecar_path = path / SIDECAR_FILE if path.is_dir() else path
    try:
        info = json.loads(sidecar_path.read_text(encoding="utf-8"))
    except FileNotFoundError as exc:
        raise ArtifactError(f"no oracle artifact at {path} (missing {SIDECAR_FILE})") from exc
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"artifact sidecar {sidecar_path} is not valid JSON: {exc}") from exc
    schema = info.get("schema")
    if schema != ARTIFACT_SCHEMA:
        raise ArtifactError(
            f"unsupported artifact schema {schema!r} (this build reads {ARTIFACT_SCHEMA!r})"
        )
    return info


_ZIP_LOCAL_HEADER = struct.Struct("<4s5H3I2H")  # fixed 30-byte local file header


def _npz_member_offsets(npz_path: Path) -> dict[str, tuple[int, int, bool]]:
    """Per-member ``(data_offset, data_size, stored)`` for an npz file.

    ``data_offset`` addresses the first byte of the member's ``.npy``
    stream inside the container (local header and filename skipped);
    ``stored`` is False for compressed (legacy) members, which cannot
    be mapped.
    """
    out: dict[str, tuple[int, int, bool]] = {}
    with zipfile.ZipFile(npz_path) as zf, open(npz_path, "rb") as fh:
        for info in zf.infolist():
            fh.seek(info.header_offset)
            raw = fh.read(_ZIP_LOCAL_HEADER.size)
            if len(raw) != _ZIP_LOCAL_HEADER.size:
                raise ArtifactError(f"artifact {npz_path} has a truncated zip header")
            fields = _ZIP_LOCAL_HEADER.unpack(raw)
            name_len, extra_len = fields[-2], fields[-1]
            data_off = info.header_offset + _ZIP_LOCAL_HEADER.size + name_len + extra_len
            key = info.filename.removesuffix(".npy")
            out[key] = (data_off, info.compress_size, info.compress_type == zipfile.ZIP_STORED)
    return out


def _mmap_npz_arrays(npz_path: Path) -> dict[str, np.ndarray]:
    """Map every stored npz member as a read-only ``np.memmap``.

    Nothing is copied: each returned array is a view of the page cache
    over the artifact file, so N processes mapping the same artifact
    share one physical copy.  Compressed members (legacy artifacts from
    the ``savez_compressed`` era) cannot be mapped and are decompressed
    eagerly with a one-time warning.
    """
    arrays: dict[str, np.ndarray] = {}
    eager: list[str] = []
    with open(npz_path, "rb") as fh:
        for key, (offset, size, stored) in _npz_member_offsets(npz_path).items():
            if not stored:
                eager.append(key)
                continue
            fh.seek(offset)
            version = np.lib.format.read_magic(fh)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
            else:
                raise ArtifactError(
                    f"artifact member {key} uses unsupported npy format {version}"
                )
            if fortran:  # pragma: no cover - savez never writes Fortran order
                raise ArtifactError(f"artifact member {key} is Fortran-ordered")
            arrays[key] = np.memmap(npz_path, dtype=dtype, mode="r", offset=fh.tell(), shape=shape)
    if eager:
        warnings.warn(
            f"artifact {npz_path} has {len(eager)} compressed member(s) "
            "(legacy savez_compressed layout); loading them eagerly -- repack "
            "with `repro pack` for zero-copy mmap serving",
            RuntimeWarning,
            stacklevel=3,
        )
        with np.load(npz_path) as data:
            for key in eager:
                arrays[key] = data[key]
    return arrays


def load_oracle(
    path: PathLike,
    verify: bool = True,
    backend: str | None = None,
    *,
    mmap: bool = False,
) -> GroundTruthOracle:
    """Rebuild a :class:`GroundTruthOracle` from an artifact directory.

    Verifies the sidecar's schema tag and (unless ``verify=False``) the
    content checksum *and* the persisted kernel coefficients against the
    factor statistics, raising :class:`ArtifactIntegrityError` on any
    disagreement -- a tampered or bit-rotted artifact never serves.

    ``backend`` selects the kernel backend of the rebuilt oracle
    (``None`` resolves the process selection); artifacts are
    backend-neutral, so any backend can serve any artifact.

    ``mmap=True`` maps the arrays read-only straight out of the npz
    container instead of materializing copies: the checksum is verified
    against the file bytes (read through the mapping, nothing retained),
    and the oracle's factor statistics stay backed by the page cache --
    so forked serving workers share one physical artifact and per-worker
    RSS stays flat (see :mod:`repro.serve.prefork` and
    ``tests/serve/test_prefork.py``).
    """
    path = Path(path)
    info = artifact_info(path)
    npz_path = path / ORACLE_FILE
    if not npz_path.exists():
        raise ArtifactError(f"artifact {path} is missing {ORACLE_FILE}")
    with get_tracer().span("serve.load_oracle", artifact=str(path), mmap=mmap):
        try:
            if mmap:
                arrays = _mmap_npz_arrays(npz_path)
            else:
                with np.load(npz_path) as data:
                    arrays = {key: data[key] for key in data.files}
        except (OSError, ValueError, zipfile.BadZipFile) as exc:
            # BadZipFile covers zlib/CRC failure on a bit-rotted npz, which
            # numpy surfaces before our content checksum can run.
            raise ArtifactError(f"artifact {npz_path} is unreadable: {exc}") from exc
        if verify:
            actual = checksum_arrays(arrays)
            if actual != info.get("checksum"):
                raise ArtifactIntegrityError(
                    f"artifact checksum mismatch in {path}: arrays hash to {actual}, "
                    f"sidecar records {info.get('checksum')!r}"
                )
        try:
            assumption = Assumption[info["assumption"]]
        except KeyError as exc:
            raise ArtifactError(f"unknown assumption {info.get('assumption')!r}") from exc
        n_a = int(info["factors"]["a"]["n"])
        n_b = int(info["factors"]["b"]["n"])
        stats_a = _stats_from(arrays, "a", n_a)
        stats_b = _stats_from(arrays, "b", n_b)
        if "part_b" not in arrays:
            raise ArtifactError("artifact is missing the part_b bipartition mask")
        oracle = GroundTruthOracle.from_factor_stats(
            stats_a, stats_b, arrays["part_b"], assumption, backend=backend
        )
        if verify:
            vertex_l, vertex_r = oracle._term_matrices
            if not (
                np.array_equal(arrays.get("vertex_L"), vertex_l)
                and np.array_equal(arrays.get("vertex_R"), vertex_r)
            ):
                raise ArtifactIntegrityError(
                    f"artifact {path}: persisted kernel coefficients disagree with "
                    "the factor statistics (corrupt or hand-edited artifact)"
                )
    return oracle
