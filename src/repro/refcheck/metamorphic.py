"""Metamorphic relations over the ground-truth formula layer.

Differential testing (``differ.py``) needs a referee; metamorphic
testing needs none.  Each relation here transforms the *input* in a way
whose effect on the *output* is known a priori — relabeling permutes
counts, factor order transposes the grid, deleting a factor edge can
only lose product 4-cycles, per-vertex/per-edge counts must tile the
global count — so a violation indicts the formulas without any second
implementation in the loop.  The relations run both inside the
``repro verify`` engine and as a Hypothesis fleet in
``tests/refcheck/test_metamorphic.py``.

All checks raise :class:`MetamorphicViolation` with a locating message;
they return silently on success.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.kronecker import kernels
from repro.kronecker.assumptions import Assumption, BipartiteKronecker, make_bipartite_product
from repro.kronecker.ground_truth import (
    FactorStats,
    edge_squares_product,
    global_squares_product,
    vertex_squares_product,
)

__all__ = [
    "MetamorphicViolation",
    "global_squares_from_stats",
    "check_relabel_invariance",
    "check_factor_swap_vertex_symmetry",
    "check_edge_deletion_monotonicity",
    "check_vertex_sum_consistency",
    "check_edge_sum_consistency",
]


class MetamorphicViolation(AssertionError):
    """A metamorphic relation failed; the message locates the breakage."""


def global_squares_from_stats(
    stats_a: FactorStats, stats_b: FactorStats, assumption: Assumption
) -> int:
    """Sublinear global count straight from factor statistics.

    Stats-level sibling of
    :func:`~repro.kronecker.ground_truth.global_squares_product`, usable
    on factor pairs that need no Assumption-1 validation (the closed
    forms are pure closed-walk algebra and hold for any loop-free
    factors).
    """
    acc = 0
    for sign, left, right in kernels.vertex_terms(stats_a, stats_b, assumption):
        acc += sign * int(left.sum()) * int(right.sum())
    half, rem = divmod(acc, 2)
    assert rem == 0
    total, rem4 = divmod(half, 4)
    assert rem4 == 0
    return total


def _product_permutation(perm_a: np.ndarray, perm_b: np.ndarray) -> np.ndarray:
    """The product relabeling induced by factor relabelings:
    ``γ(i, k) -> γ(perm_a[i], perm_b[k])``."""
    perm_a = np.asarray(perm_a, dtype=np.int64)
    perm_b = np.asarray(perm_b, dtype=np.int64)
    return (perm_a[:, None] * perm_b.size + perm_b[None, :]).ravel()


def check_relabel_invariance(
    A: Graph,
    B: Graph,
    assumption: Assumption,
    perm_a: np.ndarray,
    perm_b: np.ndarray,
) -> None:
    """Relabeling factors must permute — never change — the counts.

    For ``A' = A.relabel(perm_a)``, ``B' = B.relabel(perm_b)`` the
    product counts must satisfy ``s_{C'}(γ(perm_a[i], perm_b[k])) =
    s_C(γ(i, k))``, and likewise for every per-edge ``◇`` value.
    """
    bk = make_bipartite_product(A, B, assumption, require_connected=False)
    bk_rel = make_bipartite_product(
        A.relabel(perm_a), B.relabel(perm_b), assumption, require_connected=False
    )
    perm_c = _product_permutation(perm_a, perm_b)

    s = vertex_squares_product(bk)
    s_rel = vertex_squares_product(bk_rel)
    if not np.array_equal(s_rel[perm_c], s):
        bad = int(np.flatnonzero(s_rel[perm_c] != s)[0])
        raise MetamorphicViolation(
            f"vertex relabeling invariance: s mismatch at product vertex {bad} "
            f"({int(s[bad])} vs relabeled {int(s_rel[perm_c[bad]])})"
        )

    dia = edge_squares_product(bk).toarray()
    dia_rel = edge_squares_product(bk_rel).toarray()
    moved_back = dia_rel[np.ix_(perm_c, perm_c)]
    if not np.array_equal(moved_back, dia):
        p, q = (int(x[0]) for x in np.nonzero(moved_back != dia))
        raise MetamorphicViolation(
            f"edge relabeling invariance: ◇ mismatch at product edge ({p}, {q}) "
            f"({int(dia[p, q])} vs relabeled {int(moved_back[p, q])})"
        )


def check_factor_swap_vertex_symmetry(A: Graph, B: Graph) -> None:
    """Thm. 3's vertex grid must be symmetric under factor swap:
    ``s_{A⊗B}(γ(i, k)) = s_{B⊗A}(γ(k, i))``.

    Evaluated at the statistics level (no Assumption-1 parity
    validation), because swapping the factors of a valid 1(i) pair
    yields a pair the product *constructor* would reject even though
    the closed form still holds.
    """
    stats_a = FactorStats.from_graph(A)
    stats_b = FactorStats.from_graph(B)
    ab = kernels.vertex_squares_grid(
        stats_a, stats_b, Assumption.NON_BIPARTITE_FACTOR
    ).reshape(A.n, B.n)
    ba = kernels.vertex_squares_grid(
        stats_b, stats_a, Assumption.NON_BIPARTITE_FACTOR
    ).reshape(B.n, A.n)
    if not np.array_equal(ab, ba.T):
        i, k = (int(x[0]) for x in np.nonzero(ab != ba.T))
        raise MetamorphicViolation(
            f"factor swap symmetry: s_(A⊗B)(γ({i},{k})) = {int(ab[i, k])} but "
            f"s_(B⊗A)(γ({k},{i})) = {int(ba[k, i])}"
        )


def check_edge_deletion_monotonicity(
    A: Graph, B: Graph, assumption: Assumption
) -> None:
    """Deleting any edge of ``B`` shrinks the product, so the global
    butterfly count must be non-increasing — for every edge of ``B``.

    ``A ⊗ (B − e)`` is a subgraph of ``A ⊗ B``; counts are evaluated
    at the statistics level because ``B − e`` may be disconnected.
    """
    stats_a = FactorStats.from_graph(A)
    base = global_squares_from_stats(stats_a, FactorStats.from_graph(B), assumption)
    u_arr, v_arr = B.edge_arrays()
    for u, v in zip(u_arr.tolist(), v_arr.tolist()):
        kept = [(a, b) for a, b in zip(u_arr.tolist(), v_arr.tolist()) if (a, b) != (u, v)]
        reduced = global_squares_from_stats(
            stats_a, FactorStats.from_graph(Graph.from_edges(B.n, kept)), assumption
        )
        if reduced > base:
            raise MetamorphicViolation(
                f"edge-deletion monotonicity: removing B edge ({u}, {v}) raised the "
                f"global count {base} -> {reduced}"
            )


def check_vertex_sum_consistency(bk: BipartiteKronecker) -> None:
    """Every 4-cycle passes through exactly 4 vertices, so
    ``Σ_p s_C(p) = 4 · #squares(C)``."""
    s_sum = int(vertex_squares_product(bk).sum())
    total = global_squares_product(bk)
    if s_sum != 4 * total:
        raise MetamorphicViolation(
            f"vertex sum consistency: Σ s = {s_sum} but 4 x global = {4 * total}"
        )


def check_edge_sum_consistency(bk: BipartiteKronecker) -> None:
    """Every 4-cycle contains exactly 4 undirected edges, so the sum of
    ``◇`` over the symmetric stored entries is ``8 · #squares(C)``."""
    dia_sum = int(edge_squares_product(bk).sum())
    total = global_squares_product(bk)
    if dia_sum != 8 * total:
        raise MetamorphicViolation(
            f"edge sum consistency: Σ ◇ over stored entries = {dia_sum} "
            f"but 8 x global = {8 * total}"
        )
