"""Slow-but-obviously-correct brute-force reference counters.

Every other implementation of the paper's quantities in this repository
— the fused kernels, the legacy ``sp.kron`` term sums, the oracle, the
streaming values, the matrix identities in :mod:`repro.analytics` —
descends from the *same* closed-walk algebra.  A shared algebra bug
would pass every bit-identity check between them.  This module is the
derivation-independent referee: it counts 4-cycles by direct
neighborhood intersection on a materialized graph, with plain Python
sets, and re-derives structural facts (bipartiteness, connectivity,
community edge counts) by first-principles traversal.

Ground rules, enforced by a dedicated test:

* **no imports from** :mod:`repro.kronecker` (kernels, ground_truth,
  oracle, streaming, ...) and **none from** :mod:`repro.analytics` —
  only the :class:`~repro.graphs.graph.Graph` container is consumed,
  and only through its adjacency accessors;
* no linear algebra: no matrix powers, no ``A @ A``, no closed-walk
  identities.  Counting is literal cycle enumeration.

Everything here is O(n²·d) to O(m·d²) — fine for the differential
engine's small materialized products, never for production paths.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.graphs.graph import Graph

__all__ = [
    "neighbor_sets",
    "degrees",
    "squares_at_vertices",
    "squares_at_edges",
    "global_squares",
    "two_coloring",
    "is_proper_two_coloring",
    "connected_components",
    "community_edge_counts",
    "clustering_at_edges",
    "wing_peel",
]


def _require_loop_free(graph: Graph) -> None:
    if graph.has_self_loops:
        raise ValueError(
            "brute-force 4-cycle counting assumes a loop-free graph "
            "(paper §II-B); products of loop-free right factors are loop-free"
        )


def neighbor_sets(graph: Graph) -> List[set]:
    """Per-vertex neighbour sets — the only data structure used here."""
    return [set(graph.neighbors(v).tolist()) for v in range(graph.n)]


def degrees(graph: Graph, nbrs: Optional[List[set]] = None) -> np.ndarray:
    """Degree per vertex, by counting neighbours one by one."""
    _require_loop_free(graph)
    if nbrs is None:
        nbrs = neighbor_sets(graph)
    return np.array([len(s) for s in nbrs], dtype=np.int64)


def squares_at_vertices(graph: Graph, nbrs: Optional[List[set]] = None) -> np.ndarray:
    """4-cycles through each vertex, by neighborhood intersection.

    A 4-cycle through ``v`` is ``v – a – u – b – v`` with ``a ≠ b`` both
    in ``N(v) ∩ N(u)``; the opposite vertex ``u`` is unique per cycle,
    so ``s(v) = Σ_{u ≠ v} C(|N(v) ∩ N(u)|, 2)``.  Candidate ``u`` are
    restricted to vertices two hops from ``v`` (any opposite vertex is
    one), which changes nothing about correctness.
    """
    _require_loop_free(graph)
    if nbrs is None:
        nbrs = neighbor_sets(graph)
    out = np.zeros(graph.n, dtype=np.int64)
    for v in range(graph.n):
        candidates: set = set()
        for w in nbrs[v]:
            candidates |= nbrs[w]
        candidates.discard(v)
        total = 0
        for u in candidates:
            c = len(nbrs[v] & nbrs[u])
            total += c * (c - 1) // 2
        out[v] = total
    return out


def squares_at_edges(
    graph: Graph, nbrs: Optional[List[set]] = None
) -> Dict[Tuple[int, int], int]:
    """4-cycles containing each undirected edge, keyed ``(u, v)``, ``u <= v``.

    A 4-cycle containing edge ``(u, v)`` is ``u – v – x – y – u``; for a
    fixed cycle the pair ``(x, y)`` is unique (``x`` is ``v``'s other
    cycle neighbour, ``y`` is ``u``'s).  So the count is the number of
    edges ``(x, y)`` with ``x ∈ N(v)∖{u}``, ``y ∈ N(u)∖{v}``, ``x ≠ y``.
    """
    _require_loop_free(graph)
    if nbrs is None:
        nbrs = neighbor_sets(graph)
    counts: Dict[Tuple[int, int], int] = {}
    u_arr, v_arr = graph.edge_arrays()
    for u, v in zip(u_arr.tolist(), v_arr.tolist()):
        c = 0
        for x in nbrs[v]:
            if x == u:
                continue
            for y in nbrs[u]:
                if y == v or y == x:
                    continue
                if y in nbrs[x]:
                    c += 1
        counts[(u, v)] = c
    return counts


def global_squares(graph: Graph, nbrs: Optional[List[set]] = None) -> int:
    """Total 4-cycles, by summing over *diagonal pairs*.

    Each 4-cycle ``v – a – u – b`` has exactly two diagonals, ``{v, u}``
    and ``{a, b}``, and a diagonal pair with codegree ``c`` closes
    ``C(c, 2)`` cycles; so ``Σ_{u < v} C(|N(u) ∩ N(v)|, 2)`` counts every
    cycle exactly twice.  This is a *different* enumeration route than
    :func:`squares_at_vertices`, so the two cross-check each other.
    """
    _require_loop_free(graph)
    if nbrs is None:
        nbrs = neighbor_sets(graph)
    total = 0
    for v in range(graph.n):
        for u in range(v + 1, graph.n):
            c = len(nbrs[v] & nbrs[u])
            total += c * (c - 1) // 2
    half, rem = divmod(total, 2)
    assert rem == 0, "diagonal-pair enumeration double-counts every 4-cycle"
    return half


def clustering_at_edges(
    graph: Graph, nbrs: Optional[List[set]] = None
) -> Dict[Tuple[int, int], float]:
    """Def.-10 edge clustering ``◇ / ((d_u − 1)(d_v − 1))`` from brute
    counts, over edges whose endpoints both have degree >= 2."""
    if nbrs is None:
        nbrs = neighbor_sets(graph)
    deg = degrees(graph, nbrs)
    out: Dict[Tuple[int, int], float] = {}
    for (u, v), dia in squares_at_edges(graph, nbrs).items():
        if deg[u] >= 2 and deg[v] >= 2:
            out[(u, v)] = dia / ((int(deg[u]) - 1) * (int(deg[v]) - 1))
    return out


def _edge_support(live: List[set], u: int, v: int) -> int:
    """4-cycles through the *remaining* edge ``(u, v)``, by the same
    literal ``x``/``y`` set-intersection walk as :func:`squares_at_edges`
    but over a mutable adjacency (used mid-peel)."""
    c = 0
    for x in live[v]:
        if x == u:
            continue
        for y in live[u]:
            if y == v or y == x:
                continue
            if y in live[x]:
                c += 1
    return c


def wing_peel(
    graph: Graph, nbrs: Optional[List[set]] = None
) -> Dict[Tuple[int, int], int]:
    """Exact wing (bitruss) numbers by batch peeling, keyed ``(u, v)``,
    ``u <= v``.

    The wing number of an edge is the largest ``k`` such that the edge
    lies in a subgraph where *every* edge sits on at least ``k``
    4-cycles.  This referee peels by brute force: at level ``k`` it
    recomputes every remaining edge's support *from scratch* (literal
    set intersection, nothing incremental), deletes the batch with
    support ``<= k``, assigns them wing number ``k``, and repeats until
    the level is dry before raising ``k`` to the new minimum support.
    Deleting an edge only ever lowers other supports, so the batch
    order is immaterial — edges dragged under ``k`` by a deletion are
    caught on the next sweep of the same level.

    Deliberately shares no machinery with the production peeling engine
    (lazy heap + per-cycle decrements): a bookkeeping bug there cannot
    hide here.
    """
    _require_loop_free(graph)
    if nbrs is None:
        nbrs = neighbor_sets(graph)
    live = [set(s) for s in nbrs]
    u_arr, v_arr = graph.edge_arrays()
    edges = {(min(u, v), max(u, v)) for u, v in zip(u_arr.tolist(), v_arr.tolist())}
    wing: Dict[Tuple[int, int], int] = {}
    k = 0
    while edges:
        supports = {(u, v): _edge_support(live, u, v) for u, v in edges}
        k = max(k, min(supports.values()))
        doomed = [e for e, s in supports.items() if s <= k]
        for u, v in doomed:
            wing[(u, v)] = k
            edges.discard((u, v))
            live[u].discard(v)
            live[v].discard(u)
    return wing


# ---------------------------------------------------------------------------
# Structure: bipartiteness, connectivity, communities
# ---------------------------------------------------------------------------


def two_coloring(graph: Graph) -> Optional[np.ndarray]:
    """A proper 2-coloring found by plain BFS, or ``None`` if the graph
    has an odd cycle (is not bipartite)."""
    colors = np.full(graph.n, -1, dtype=np.int64)
    for root in range(graph.n):
        if colors[root] != -1:
            continue
        colors[root] = 0
        queue = [root]
        while queue:
            v = queue.pop()
            for w in graph.neighbors(v).tolist():
                if colors[w] == -1:
                    colors[w] = 1 - colors[v]
                    queue.append(w)
                elif colors[w] == colors[v]:
                    return None
    return colors


def is_proper_two_coloring(graph: Graph, part: Iterable[bool]) -> bool:
    """Whether the claimed bipartition puts the two endpoints of every
    edge in different parts (checked edge by edge)."""
    part = np.asarray(list(part), dtype=bool)
    u_arr, v_arr = graph.edge_arrays()
    for u, v in zip(u_arr.tolist(), v_arr.tolist()):
        if part[u] == part[v]:
            return False
    return True


def connected_components(graph: Graph) -> np.ndarray:
    """Component label per vertex (labels are the component roots),
    found by plain BFS."""
    labels = np.full(graph.n, -1, dtype=np.int64)
    for root in range(graph.n):
        if labels[root] != -1:
            continue
        labels[root] = root
        queue = [root]
        while queue:
            v = queue.pop()
            for w in graph.neighbors(v).tolist():
                if labels[w] == -1:
                    labels[w] = root
                    queue.append(w)
    return labels


def community_edge_counts(graph: Graph, members: Iterable[int]) -> Tuple[int, int]:
    """Def.-11 ``(m_in, m_out)`` by looking at every edge once.

    ``m_in`` counts edges with both endpoints in the community,
    ``m_out`` edges with exactly one.
    """
    inside = set(int(v) for v in members)
    m_in = 0
    m_out = 0
    u_arr, v_arr = graph.edge_arrays()
    for u, v in zip(u_arr.tolist(), v_arr.tolist()):
        hits = (u in inside) + (v in inside)
        if hits == 2:
            m_in += 1
        elif hits == 1:
            m_out += 1
    return m_in, m_out
