"""Differential verification engine: fused vs legacy vs brute force.

For every corpus case (seeded random factor pairs under Assumption 1(i)
and 1(ii), plus the adversarial shapes and multi-factor chains in
:mod:`repro.refcheck.corpus`) the engine materializes the product once,
computes every quantity through every implementation the repo ships —

* fused kernels (:mod:`repro.kronecker.kernels`, via the public
  formula entry points),
* the legacy term-by-term ``sp.kron`` paths (``*_reference`` exports),
* the batched oracle and the streaming generator,
* the sublinear global formulas, Thm. 7 community counts, Def. 10/11
  evaluations,

— and cross-checks each against the derivation-independent brute-force
referee (:mod:`repro.refcheck.brute`).  Any disagreement is reported as
a machine-readable *first-divergence witness*: the factor edge lists
(enough to reproduce the case exactly), the quantity, the
implementation pair, and the offending vertex or edge with both values.

``perturb="beta-sign"`` deliberately flips the sign of the β terms in
the fused edge coefficients for the duration of the run — the
self-test proving the engine actually catches single-sign formula bugs
(wired into CI's deep-check drill and the acceptance tests).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.graphs.graph import Graph
from repro.kronecker import kernels
from repro.kronecker.assumptions import Assumption, make_bipartite_product
from repro.kronecker.clustering import edge_clustering_ground_truth
from repro.kronecker.community import (
    BipartiteCommunity,
    community_counts,
    product_community,
    thm7_product_counts,
)
from repro.kronecker.ground_truth import (
    edge_squares_product,
    edge_squares_product_reference,
    global_squares_product,
    vertex_squares_product,
    vertex_squares_product_reference,
)
from repro.kronecker.multifactor import multi_kronecker_stats
from repro.kronecker.oracle import GroundTruthOracle
from repro.kronecker.streaming import stream_edges, streamed_connectivity_audit
from repro.kronecker.wings import (
    certified_zero_wing_edges,
    chain_wings_at_edges,
    max_wing_upper_bound,
    wing_upper_bounds,
)
from repro.analytics.peel import peel_wing_numbers
from repro.obs import get_metrics, get_tracer
from repro.refcheck import brute
from repro.refcheck.corpus import (
    VerifyCase,
    adversarial_cases,
    chain_cases,
    random_cases,
    scale_chain_cases,
    wing_chain_cases,
    wing_product_cases,
)
from repro.refcheck.metamorphic import (
    MetamorphicViolation,
    check_edge_sum_consistency,
    check_vertex_sum_consistency,
)

__all__ = [
    "PERTURBATIONS",
    "DivergenceWitness",
    "VerifyReport",
    "run_verification",
    "resolve_assumptions",
]

REPORT_SCHEMA = "repro.refcheck/1"

#: Supported deliberate formula perturbations (engine self-tests).
PERTURBATIONS = ("beta-sign", "wing-support")


@dataclass(frozen=True)
class DivergenceWitness:
    """One implementation disagreeing with its reference, pinned to a
    reproducible case and the first offending location."""

    case: str
    assumption: str
    quantity: str
    implementation: str
    reference: str
    location: Dict[str, Union[int, str]]
    expected: Union[int, float, str]
    actual: Union[int, float, str]
    factors: Dict[str, dict]
    #: Kernel backend the fused implementations ran under -- a
    #: numba-only divergence must be attributable from the report alone.
    backend: str = "numpy"

    def to_dict(self) -> dict:
        return {
            "case": self.case,
            "assumption": self.assumption,
            "quantity": self.quantity,
            "implementation": self.implementation,
            "reference": self.reference,
            "backend": self.backend,
            "location": dict(self.location),
            "expected": self.expected,
            "actual": self.actual,
            "factors": self.factors,
        }

    def format(self) -> str:
        loc = ", ".join(f"{k}={v}" for k, v in self.location.items())
        return (
            f"{self.case} [{self.assumption}] {self.quantity}: "
            f"{self.implementation} != {self.reference} "
            f"[backend={self.backend}] at ({loc}): "
            f"expected {self.expected}, got {self.actual}"
        )


@dataclass
class VerifyReport:
    """Machine-readable outcome of one differential verification run."""

    seed: int
    trials: int
    max_factor_size: int
    assumptions: List[str]
    perturbation: Optional[str]
    backend: str = "numpy"
    tier: str = "standard"
    cases: int = 0
    checks: int = 0
    elapsed_seconds: float = 0.0
    witnesses: List[DivergenceWitness] = field(default_factory=list)

    @property
    def divergences(self) -> int:
        return len(self.witnesses)

    @property
    def passed(self) -> bool:
        return not self.witnesses

    def to_dict(self) -> dict:
        return {
            "schema": REPORT_SCHEMA,
            "seed": self.seed,
            "trials": self.trials,
            "max_factor_size": self.max_factor_size,
            "assumptions": self.assumptions,
            "perturbation": self.perturbation,
            "backend": self.backend,
            "tier": self.tier,
            "cases": self.cases,
            "checks": self.checks,
            "divergences": self.divergences,
            "passed": self.passed,
            "elapsed_seconds": self.elapsed_seconds,
            "witnesses": [w.to_dict() for w in self.witnesses],
        }

    def write(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=False)
            fh.write("\n")

    def format(self) -> str:
        head = (
            f"verify {'PASS' if self.passed else 'FAIL'}: "
            f"{self.cases} cases, {self.checks} checks, "
            f"{self.divergences} divergences "
            f"(tier={self.tier}, seed={self.seed}, trials={self.trials}, "
            f"backend={self.backend}, "
            f"assumptions={'/'.join(self.assumptions)}"
            + (f", perturbation={self.perturbation}" if self.perturbation else "")
            + f") in {self.elapsed_seconds:.2f}s"
        )
        lines = [head]
        for w in self.witnesses[:20]:
            lines.append(f"  DIVERGENCE {w.format()}")
        if self.divergences > 20:
            lines.append(f"  ... and {self.divergences - 20} more")
        return "\n".join(lines)


def resolve_assumptions(spec: Union[str, Sequence[Assumption]]) -> List[Assumption]:
    """``"i"`` / ``"ii"`` / ``"both"`` (or explicit enums) -> enum list."""
    if not isinstance(spec, str):
        return list(spec)
    table = {
        "i": [Assumption.NON_BIPARTITE_FACTOR],
        "ii": [Assumption.SELF_LOOPS_FACTOR],
        "both": [Assumption.NON_BIPARTITE_FACTOR, Assumption.SELF_LOOPS_FACTOR],
    }
    if spec not in table:
        raise ValueError(f"assumption must be 'i', 'ii' or 'both', got {spec!r}")
    return table[spec]


@contextmanager
def _perturbation(kind: Optional[str]):
    """Deliberately corrupt the fused edge coefficients for the scope.

    ``"beta-sign"`` flips the sign of both β terms, turning the edge
    formula into ``1 + α·w3 + β_i·d_k + β_j·d_l``.  The patch lands on
    :func:`repro.kronecker.kernels.edge_coefficients`, so every fused
    consumer (whole-product CSR, batched oracle queries, streaming,
    shards) inherits the bug while the legacy ``sp.kron`` path and the
    brute-force referee stay honest — exactly the single-derivation
    failure mode the differ exists to catch.

    ``"wing-support"`` inflates every fused batched support by one
    (``◇ + valid``), the off-by-one Rem. 1 is most sensitive to: the
    oracle's wing bounds drift away from the brute set-intersection
    supports and certified-zero edges stop being certified, so the
    wings tier must report divergences (the exit-4 drill in CI).
    """
    if kind in (None, "none"):
        yield
        return
    if kind not in PERTURBATIONS:
        raise ValueError(f"unknown perturbation {kind!r}; choose from {PERTURBATIONS}")
    if kind == "wing-support":
        original_batch = kernels.edge_squares_batch

        def support_off_by_one(stats_a, stats_b, assumption, i, j, k, ell, backend=None):
            values, valid = original_batch(
                stats_a, stats_b, assumption, i, j, k, ell, backend=backend
            )
            return values + valid.astype(values.dtype), valid

        kernels.edge_squares_batch = support_off_by_one
        try:
            yield
        finally:
            kernels.edge_squares_batch = original_batch
        return
    original = kernels.edge_coefficients

    def beta_sign_flipped(stats_a, assumption, i, j, backend=None):
        alpha, beta_i, beta_j, valid = original(stats_a, assumption, i, j, backend=backend)
        return alpha, -beta_i, -beta_j, valid

    kernels.edge_coefficients = beta_sign_flipped
    try:
        yield
    finally:
        kernels.edge_coefficients = original


# ---------------------------------------------------------------------------
# Per-case checking
# ---------------------------------------------------------------------------


class _CaseChecker:
    """Runs every cross-check for one corpus case, collecting witnesses."""

    def __init__(self, case: VerifyCase, report: VerifyReport):
        self.case = case
        self.report = report
        self.spec = case.spec()

    # -- witness plumbing ---------------------------------------------------

    def _witness(self, quantity, implementation, reference, location, expected, actual):
        self.report.witnesses.append(
            DivergenceWitness(
                case=self.case.label,
                assumption=self.case.assumption.value,
                quantity=quantity,
                implementation=implementation,
                reference=reference,
                location=location,
                expected=expected,
                actual=actual,
                factors={"A": self.spec["A"], "B": self.spec["B"]},
                backend=self.report.backend,
            )
        )

    def _check_vector(self, quantity, implementation, actual, expected, reference="brute"):
        """Per-vertex arrays; records the first diverging vertex."""
        self.report.checks += 1
        actual = np.asarray(actual)
        expected = np.asarray(expected)
        if actual.shape != expected.shape:
            self._witness(quantity, implementation, reference,
                          {"kind": "shape"}, str(expected.shape), str(actual.shape))
            return
        bad = np.flatnonzero(actual != expected)
        if bad.size:
            p = int(bad[0])
            self._witness(quantity, implementation, reference,
                          {"kind": "vertex", "vertex": p},
                          int(expected[p]), int(actual[p]))

    def _check_edge_values(self, quantity, implementation, pairs, actual,
                           expected_by_edge, reference="brute"):
        """Per-edge values against the brute dict; first diverging edge."""
        self.report.checks += 1
        for (p, q), val in zip(pairs, actual):
            want = expected_by_edge[(min(p, q), max(p, q))]
            if val != want:
                self._witness(quantity, implementation, reference,
                              {"kind": "edge", "p": int(p), "q": int(q)},
                              want, val)
                return

    def _check_scalar(self, quantity, implementation, actual, expected, reference="brute"):
        self.report.checks += 1
        if actual != expected:
            self._witness(quantity, implementation, reference,
                          {"kind": "global"}, expected, actual)

    # -- the checks ---------------------------------------------------------

    def run(self) -> None:
        case = self.case
        bk = make_bipartite_product(case.A, case.B, case.assumption,
                                    require_connected=False)
        C = bk.materialize()
        nbrs = brute.neighbor_sets(C)
        deg_ref = brute.degrees(C, nbrs)
        s_ref = brute.squares_at_vertices(C, nbrs)
        dia_ref = brute.squares_at_edges(C, nbrs)
        global_ref = brute.global_squares(C, nbrs)
        stats_a, stats_b = bk.factor_stats()
        oracle = GroundTruthOracle(bk)
        all_vertices = np.arange(bk.n, dtype=np.int64)

        # Vertex counts: fused grid, legacy kron terms, batched oracle.
        self._check_vector("vertex_squares", "fused-kernels",
                           vertex_squares_product(bk), s_ref)
        self._check_vector("vertex_squares", "legacy-kron",
                           vertex_squares_product_reference(bk), s_ref)
        self._check_vector("vertex_squares", "oracle-batch",
                           oracle.squares_at_vertices(all_vertices), s_ref)
        self._check_vector("degrees", "oracle-batch",
                           oracle.degrees(all_vertices), deg_ref)

        # Edge counts: fused CSR, legacy CSR, batched oracle, stream.
        fused = sp.csr_array(edge_squares_product(bk))
        legacy = sp.csr_array(edge_squares_product_reference(bk))
        self._check_pattern(fused, C)
        coo = fused.tocoo()
        pairs = list(zip(coo.row.tolist(), coo.col.tolist()))
        self._check_edge_values("edge_squares", "fused-kernels",
                                pairs, coo.data.tolist(), dia_ref)
        lcoo = legacy.tocoo()
        self._check_edge_values("edge_squares", "legacy-kron",
                                list(zip(lcoo.row.tolist(), lcoo.col.tolist())),
                                lcoo.data.tolist(), dia_ref)
        u_arr, v_arr = C.edge_arrays()
        if u_arr.size:
            self._check_edge_values(
                "edge_squares", "oracle-batch",
                list(zip(u_arr.tolist(), v_arr.tolist())),
                oracle.squares_at_edges(u_arr, v_arr).tolist(), dia_ref)
        streamed_pairs: List[Tuple[int, int]] = []
        streamed_vals: List[int] = []
        for p, q, dia in stream_edges(bk, attach_ground_truth=True):
            streamed_pairs.extend(zip(p.tolist(), q.tolist()))
            streamed_vals.extend(np.asarray(dia).tolist())
        self._check_edge_values("edge_squares", "stream",
                                streamed_pairs, streamed_vals, dia_ref)
        self._check_scalar("edge_count", "stream", len(streamed_pairs), int(C.nnz),
                           reference="materialized-adjacency")

        # Global counts, sublinear.
        self._check_scalar("global_squares", "sublinear-formula",
                           global_squares_product(bk), global_ref)
        self._check_scalar("global_squares", "oracle",
                           oracle.global_squares(), global_ref)

        # Structure: claimed bipartition, brute bipartiteness, components.
        self.report.checks += 1
        if not brute.is_proper_two_coloring(C, bk.product_part()):
            self._witness("bipartition", "product-part", "brute",
                          {"kind": "global"}, "proper 2-coloring", "edge inside a part")
        self._check_scalar("bipartite", "brute-bfs",
                           brute.two_coloring(C) is not None, True,
                           reference="paper-claim")
        n_comp, audit_edges = streamed_connectivity_audit(bk)
        labels = brute.connected_components(C)
        self._check_scalar("connectivity", "stream-audit", n_comp,
                           int(np.unique(labels).size))
        self._check_scalar("edge_count", "stream-audit", audit_edges, int(C.m),
                           reference="materialized-adjacency")

        # Clustering (Def. 10) on every eligible product edge.
        self._check_clustering(bk, C, nbrs)

        # Communities (Thm. 7 / Def. 11), Assumption 1(ii) only.
        if case.assumption is Assumption.SELF_LOOPS_FACTOR:
            self._check_communities(bk, C)

        # Metamorphic tiling consistency (vertex/edge sums vs global).
        for check, name in ((check_vertex_sum_consistency, "vertex_sum"),
                            (check_edge_sum_consistency, "edge_sum")):
            self.report.checks += 1
            try:
                check(bk)
            except MetamorphicViolation as exc:
                self._witness(name, "formula-layer", "tiling-identity",
                              {"kind": "global"}, "consistent", str(exc))

    def _check_pattern(self, fused: sp.csr_array, C: Graph) -> None:
        """The ◇ CSR pattern must equal the product adjacency pattern."""
        self.report.checks += 1
        adj = sp.csr_array(C.adj)
        if not (np.array_equal(fused.indptr, adj.indptr)
                and np.array_equal(fused.indices, adj.indices)):
            self._witness("edge_pattern", "fused-kernels", "materialized-adjacency",
                          {"kind": "global"}, f"nnz={adj.nnz}", f"nnz={fused.nnz}")

    def _check_clustering(self, bk, C: Graph, nbrs) -> None:
        self.report.checks += 1
        gamma_ref = brute.clustering_at_edges(C, nbrs)
        p_arr, q_arr, gamma = edge_clustering_ground_truth(bk)
        seen = 0
        for p, q, g in zip(p_arr.tolist(), q_arr.tolist(), gamma.tolist()):
            want = gamma_ref.get((min(p, q), max(p, q)))
            if want is None or abs(g - want) > 1e-12:
                self._witness("edge_clustering", "ground-truth", "brute",
                              {"kind": "edge", "p": int(p), "q": int(q)},
                              want if want is not None else "not eligible", g)
                return
            seen += 1
        # Both directions of every eligible edge must have been produced.
        if seen != 2 * len(gamma_ref):
            self._witness("edge_clustering", "ground-truth", "brute",
                          {"kind": "global"}, 2 * len(gamma_ref), seen)

    def _check_communities(self, bk, C: Graph) -> None:
        if bk.A_bipartite is None:
            return
        # Deterministic community choice: every other vertex of each factor.
        members_a = np.arange(0, bk.A.n, 2, dtype=np.int64)
        members_b = np.arange(0, bk.B.graph.n, 2, dtype=np.int64)
        if members_a.size == 0 or members_b.size == 0:
            return
        comm_a = BipartiteCommunity(bk.A_bipartite, members_a)
        comm_b = BipartiteCommunity(bk.B, members_b)
        comm_c = product_community(bk, comm_a, comm_b)
        ref = brute.community_edge_counts(C, comm_c.members.tolist())
        self._check_scalar("community_counts", "thm7",
                           thm7_product_counts(comm_a, comm_b), ref)
        self._check_scalar("community_counts", "def11-linear-algebra",
                           community_counts(comm_c), ref)


def _check_chain(label: str, factors: List[Graph], report: VerifyReport) -> None:
    """Multi-factor fold (``combine_stats``) vs brute on the full chain."""
    combined = multi_kronecker_stats(factors)
    product = factors[0].adj
    for f in factors[1:]:
        product = sp.kron(product, f.adj, format="csr")
    chain_graph = Graph(sp.csr_array(product))
    nbrs = brute.neighbor_sets(chain_graph)
    checker = _CaseChecker(
        VerifyCase(label, Assumption.NON_BIPARTITE_FACTOR, factors[0], factors[-1]),
        report,
    )
    checker._check_vector("chain_vertex_squares", "combine-stats",
                          combined.s, brute.squares_at_vertices(chain_graph, nbrs))
    checker._check_vector("chain_degrees", "combine-stats",
                          combined.d, brute.degrees(chain_graph, nbrs))
    checker._check_scalar("chain_global_squares", "combine-stats",
                          combined.global_squares(),
                          brute.global_squares(chain_graph, nbrs))
    coo = sp.csr_array(combined.diamond).tocoo()
    checker._check_edge_values("chain_edge_squares", "combine-stats",
                               list(zip(coo.row.tolist(), coo.col.tolist())),
                               coo.data.tolist(),
                               brute.squares_at_edges(chain_graph, nbrs))


def _check_scale_chain(label: str, factors: List[Graph], report: VerifyReport) -> None:
    """Streamed, sharded deep-chain ground truth vs brute force.

    The extreme-scale tier's referee: plan a degree-balanced partition
    of the chain's product row space, stream every shard with attached
    ground truth (deliberately small ``block_entries`` so multi-block
    assembly is exercised), and cross-check

    * each shard's per-entry 4-cycle counts against brute force on the
      fully materialized chain product,
    * each shard's closed-form vertex-square range sum against the
      brute per-vertex sum over the same row range,
    * the shard union's entry count against the product's nnz (complete
      non-overlapping cover), and
    * the closed-form global count against both brute force and the
      independent ``combine_stats`` fold.
    """
    from repro.kronecker.multifactor import (
        KroneckerChain,
        multi_kronecker_global_squares,
    )
    from repro.parallel.partition import plan_partition, shard_of_rows

    chain = KroneckerChain.from_graphs(factors)
    product = factors[0].adj
    for f in factors[1:]:
        product = sp.kron(product, f.adj, format="csr")
    chain_graph = Graph(sp.csr_array(product))
    nbrs = brute.neighbor_sets(chain_graph)
    brute_edges = brute.squares_at_edges(chain_graph, nbrs)
    brute_vertices = brute.squares_at_vertices(chain_graph, nbrs)
    checker = _CaseChecker(
        VerifyCase(label, Assumption.NON_BIPARTITE_FACTOR, factors[0], factors[-1]),
        report,
    )
    plan = plan_partition(chain, 4, "degree")
    entries_seen = 0
    squares_sum = 0
    for start, stop in plan.bounds:
        p, q, squares = shard_of_rows(
            chain, start, stop, attach_ground_truth=True, block_entries=64
        )
        checker._check_edge_values(
            f"scale_edge_squares[{start}:{stop}]", "streamed-shard",
            list(zip(p.tolist(), q.tolist())), squares.tolist(), brute_edges,
        )
        checker._check_scalar(
            f"scale_vertex_squares[{start}:{stop}]", "range-closed-form",
            chain.vertex_squares_range_sum(start, stop),
            int(brute_vertices[start:stop].sum()),
        )
        entries_seen += int(p.size)
        squares_sum += int(squares.sum())
    checker._check_scalar("scale_cover_entries", "degree-partition",
                          entries_seen, int(chain_graph.nnz))
    checker._check_scalar("scale_global_squares", "chain-closed-form",
                          chain.global_squares(),
                          brute.global_squares(chain_graph, nbrs))
    checker._check_scalar("scale_squares_edge_sum", "streamed-shard",
                          squares_sum,
                          8 * multi_kronecker_global_squares(factors),
                          reference="combine-stats")


def _first_wing_divergence(checker, quantity, implementation, actual, expected):
    """Compare two ``(u, v) -> wing`` dicts; witness the first mismatch."""
    checker.report.checks += 1
    if actual == expected:
        return
    for key in sorted(set(actual) | set(expected)):
        a, b = actual.get(key), expected.get(key)
        if a != b:
            checker._witness(quantity, implementation, "brute-peel",
                             {"kind": "edge", "p": key[0], "q": key[1]},
                             b if b is not None else "absent",
                             a if a is not None else "absent")
            return


def _check_wing_invariants(checker, pairs, bounds, wing_ref, implementation):
    """Rem. 1 on formula output: peel never exceeds the ◇ bound, and a
    0 bound certifies wing exactly 0."""
    checker.report.checks += 1
    for (p, q), b in zip(pairs, bounds):
        w = wing_ref[(min(p, q), max(p, q))]
        if w > b or (b == 0 and w != 0):
            checker._witness("wing_bound", implementation, "brute-peel",
                             {"kind": "edge", "p": int(p), "q": int(q)},
                             f"peel {w} <= bound, 0-bound exact", int(b))
            return


def _check_wings_product(case: VerifyCase, report: VerifyReport) -> None:
    """Wings tier, factor-pair leg: Rem. 1 support bounds vs brute peel.

    Materializes the product, recomputes edge supports by literal set
    intersection and wing numbers by brute batch peeling, then
    cross-checks every formula-side wings surface: the batched oracle
    (`wings_at_edges`, the ``/v1/wings`` answer path), the fused
    whole-product CSR, the certified-zero edge list (Rem. 1 equality),
    the max-bound reduction, and the production lazy-heap peeling
    engine.
    """
    bk = make_bipartite_product(case.A, case.B, case.assumption,
                                require_connected=False)
    C = bk.materialize()
    nbrs = brute.neighbor_sets(C)
    support_ref = brute.squares_at_edges(C, nbrs)
    wing_ref = brute.wing_peel(C, nbrs)
    max_support = max(support_ref.values(), default=0)
    checker = _CaseChecker(case, report)
    oracle = GroundTruthOracle(bk)
    u_arr, v_arr = C.edge_arrays()
    if u_arr.size:
        bounds = oracle.wings_at_edges(u_arr, v_arr)
        pairs = list(zip(u_arr.tolist(), v_arr.tolist()))
        checker._check_edge_values("wing_support", "oracle-batch",
                                   pairs, bounds.tolist(), support_ref)
        _check_wing_invariants(checker, pairs, bounds.tolist(), wing_ref,
                               "oracle-batch")
    coo = sp.csr_array(wing_upper_bounds(bk)).tocoo()
    checker._check_edge_values("wing_support", "fused-csr",
                               list(zip(coo.row.tolist(), coo.col.tolist())),
                               coo.data.tolist(), support_ref)
    checker.report.checks += 1
    for p, q in certified_zero_wing_edges(bk).tolist():
        key = (min(p, q), max(p, q))
        if support_ref[key] != 0 or wing_ref[key] != 0:
            checker._witness("wing_certified_zero", "rem1-certificate",
                             "brute-peel",
                             {"kind": "edge", "p": int(p), "q": int(q)},
                             0, int(wing_ref[key] or support_ref[key]))
            break
    checker._check_scalar("max_wing_support", "oracle-reduce",
                          oracle.max_wing_bound(), max_support)
    checker._check_scalar("max_wing_support", "fused-max",
                          max_wing_upper_bound(bk), max_support)
    checker.report.checks += 1
    max_wing = max(wing_ref.values(), default=0)
    if max_wing > oracle.max_wing_bound():
        checker._witness("max_wing_bound", "oracle-reduce", "brute-peel",
                         {"kind": "global"}, f">= {max_wing}",
                         oracle.max_wing_bound())
    _first_wing_divergence(checker, "wing_number", "peel-engine",
                           peel_wing_numbers(C.adj).wing, wing_ref)


def _check_wings_chain(label: str, factors: List[Graph], report: VerifyReport) -> None:
    """Wings tier, chain leg: streamed and digit-probe supports vs brute.

    Same referee as :func:`_check_wings_product` but over an n-factor
    :class:`KroneckerChain`: the block-streamed bounds (deliberately
    tiny ``block_entries``), the mixed-radix digit-probe batch path,
    the streamed certified-zero and max reductions, and the peeling
    engine on the materialized chain product.
    """
    from repro.kronecker.multifactor import KroneckerChain

    chain = KroneckerChain.from_graphs(factors)
    product = factors[0].adj
    for f in factors[1:]:
        product = sp.kron(product, f.adj, format="csr")
    chain_graph = Graph(sp.csr_array(product))
    nbrs = brute.neighbor_sets(chain_graph)
    support_ref = brute.squares_at_edges(chain_graph, nbrs)
    wing_ref = brute.wing_peel(chain_graph, nbrs)
    max_support = max(support_ref.values(), default=0)
    checker = _CaseChecker(
        VerifyCase(label, Assumption.NON_BIPARTITE_FACTOR, factors[0], factors[-1]),
        report,
    )
    streamed_pairs: List[Tuple[int, int]] = []
    streamed_vals: List[int] = []
    for p, q, b in wing_upper_bounds(chain, block_entries=64):
        streamed_pairs.extend(zip(p.tolist(), q.tolist()))
        streamed_vals.extend(np.asarray(b).tolist())
    checker._check_edge_values("wing_support", "streamed-chain",
                               streamed_pairs, streamed_vals, support_ref)
    checker._check_scalar("wing_entry_cover", "streamed-chain",
                          len(streamed_pairs), int(chain_graph.nnz),
                          reference="materialized-adjacency")
    _check_wing_invariants(checker, streamed_pairs, streamed_vals, wing_ref,
                           "streamed-chain")
    u_arr, v_arr = chain_graph.edge_arrays()
    if u_arr.size:
        vals = chain_wings_at_edges(chain, u_arr, v_arr)
        checker._check_edge_values("wing_support", "chain-digit-probe",
                                   list(zip(u_arr.tolist(), v_arr.tolist())),
                                   vals.tolist(), support_ref)
    checker.report.checks += 1
    for p, q in certified_zero_wing_edges(chain).tolist():
        key = (min(p, q), max(p, q))
        if support_ref[key] != 0 or wing_ref[key] != 0:
            checker._witness("wing_certified_zero", "rem1-certificate",
                             "brute-peel",
                             {"kind": "edge", "p": int(p), "q": int(q)},
                             0, int(wing_ref[key] or support_ref[key]))
            break
    checker._check_scalar("max_wing_support", "streamed-max",
                          max_wing_upper_bound(chain), max_support)
    _first_wing_divergence(checker, "wing_number", "peel-engine",
                           peel_wing_numbers(chain_graph.adj).wing, wing_ref)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def run_verification(
    seed: int = 0,
    trials: int = 50,
    max_factor_size: int = 6,
    assumption: Union[str, Sequence[Assumption]] = "both",
    include_adversarial: bool = True,
    include_chains: bool = True,
    perturb: Optional[str] = None,
    backend: Optional[str] = None,
    tier: str = "standard",
) -> VerifyReport:
    """Run the full differential sweep and return the report.

    ``trials`` seeded random factor pairs (alternating over the selected
    assumptions) plus the adversarial corpora and multi-factor chains;
    every case is checked through every implementation against brute
    force.  The run is wired through the obs layer: spans
    ``verify.random`` / ``verify.adversarial`` / ``verify.chains`` and
    counters ``verify.cases_total`` / ``verify.checks_total`` /
    ``verify.divergences_total`` land in ``--profile`` /
    ``--metrics-out`` output like any other workload.

    ``tier="scale"`` runs the extreme-scale corpus instead: 3-4-factor
    deep chains whose *streamed, degree-partitioned shard* ground truth
    (:func:`~repro.parallel.partition.shard_of_rows`) is cross-checked
    shard by shard against a brute-force referee on the materialized
    chain product.  Same report shape, same exit-4 contract via
    ``passed``.

    ``tier="wings"`` runs the wings corpus: factor pairs and 3-factor
    chains whose Rem. 1 support bounds (oracle batch, fused CSR,
    streamed chain blocks, digit-probe batch) are checked against the
    brute set-intersection supports, and whose exact wing numbers —
    brute batch peel vs the production lazy-heap engine — must respect
    the bounds everywhere with equality on certified-zero edges.

    ``backend`` selects the kernel backend every fused implementation
    runs under (applied as a :func:`~repro.kronecker.backends.use_backend`
    scope, so the oracle, stream, and whole-product paths all inherit
    it); the legacy ``sp.kron`` paths and the brute-force referee are
    backend-independent.  The *resolved* name -- after any
    missing-dependency fallback -- is recorded in the report and every
    witness.
    """
    from repro.kronecker.backends import get_backend, use_backend

    if tier not in ("standard", "scale", "wings"):
        raise ValueError(
            f"unknown verification tier {tier!r} (standard, scale or wings)"
        )
    backend_name = get_backend(backend).name
    assumptions = resolve_assumptions(assumption)
    report = VerifyReport(
        seed=seed,
        trials=trials,
        max_factor_size=max_factor_size,
        assumptions=[a.value for a in assumptions],
        perturbation=None if perturb in (None, "none") else perturb,
        backend=backend_name,
        tier=tier,
    )
    tracer = get_tracer()
    metrics = get_metrics()
    cases_total = metrics.counter("verify.cases_total")
    t0 = time.perf_counter()
    with _perturbation(perturb), use_backend(backend_name):
        if tier == "scale":
            with tracer.span("verify.scale"):
                for label, factors in scale_chain_cases():
                    _check_scale_chain(label, factors, report)
                    report.cases += 1
                    cases_total.inc()
        elif tier == "wings":
            with tracer.span("verify.wings"):
                for case in wing_product_cases():
                    _check_wings_product(case, report)
                    report.cases += 1
                    cases_total.inc()
                for label, factors in wing_chain_cases():
                    _check_wings_chain(label, factors, report)
                    report.cases += 1
                    cases_total.inc()
        else:
            batches = [("verify.random",
                        random_cases(seed, trials, max_factor_size, assumptions))]
            if include_adversarial:
                batches.append(("verify.adversarial", adversarial_cases(assumptions)))
            for span_name, cases in batches:
                with tracer.span(span_name, cases=len(cases)):
                    for case in cases:
                        _CaseChecker(case, report).run()
                        report.cases += 1
                        cases_total.inc()
            if include_chains:
                with tracer.span("verify.chains"):
                    for label, factors in chain_cases():
                        _check_chain(label, factors, report)
                        report.cases += 1
                        cases_total.inc()
    report.elapsed_seconds = time.perf_counter() - t0
    metrics.counter("verify.checks_total").inc(report.checks)
    metrics.counter("verify.divergences_total").inc(report.divergences)
    return report
