"""Derivation-independent verification of the ground-truth layer.

Every production path in :mod:`repro.kronecker` — fused kernels, legacy
``sp.kron`` term sums, the oracle, streaming — descends from the same
closed-walk algebra, so bit-identity checks between them cannot catch a
shared derivation bug.  This package supplies the missing referee and
the machinery around it:

* :mod:`repro.refcheck.brute` — brute-force counters by direct cycle
  enumeration on the materialized product (never imports the formulas);
* :mod:`repro.refcheck.corpus` — seeded random and adversarial factor
  corpora, plus multi-factor chains;
* :mod:`repro.refcheck.differ` — the differential engine behind
  ``repro verify``: every implementation vs. brute force, divergences
  reported as machine-readable witnesses;
* :mod:`repro.refcheck.metamorphic` — referee-free relations
  (relabeling invariance, factor-swap symmetry, edge-deletion
  monotonicity, tiling consistency) for the Hypothesis fleet.
"""

from repro.refcheck.corpus import (
    VerifyCase,
    adversarial_cases,
    chain_cases,
    graph_from_spec,
    random_cases,
)
from repro.refcheck.differ import (
    PERTURBATIONS,
    DivergenceWitness,
    VerifyReport,
    resolve_assumptions,
    run_verification,
)
from repro.refcheck.metamorphic import (
    MetamorphicViolation,
    check_edge_deletion_monotonicity,
    check_edge_sum_consistency,
    check_factor_swap_vertex_symmetry,
    check_relabel_invariance,
    check_vertex_sum_consistency,
)

__all__ = [
    "VerifyCase",
    "adversarial_cases",
    "chain_cases",
    "graph_from_spec",
    "random_cases",
    "PERTURBATIONS",
    "DivergenceWitness",
    "VerifyReport",
    "resolve_assumptions",
    "run_verification",
    "MetamorphicViolation",
    "check_edge_deletion_monotonicity",
    "check_edge_sum_consistency",
    "check_factor_swap_vertex_symmetry",
    "check_relabel_invariance",
    "check_vertex_sum_consistency",
]
