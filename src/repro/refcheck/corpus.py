"""Factor corpora for the differential verification engine.

Two sources of factor pairs, both deterministic given a seed:

* :func:`random_cases` — seeded random connected factors under
  Assumption 1(i) (non-bipartite ``A``) and 1(ii) (bipartite ``A``),
  grown constructively (attachment spanning structure + extra edges)
  so no draw is wasted on invalid parity;
* :func:`adversarial_cases` — the hand-picked shapes that historically
  break counters: stars (degree-1 fringes), paths (no squares at all),
  complete bipartite blocks (dense ◇), degenerate/empty factors,
  isolated vertices, disconnected matchings, single-edge products.

:func:`chain_cases` supplies multi-factor chains for the
``combine_stats`` fold, which the differ checks against brute force on
the fully materialized chain product.  :func:`scale_chain_cases`
supplies the extreme-scale tier's corpus (``repro verify --tier
scale``): 3-4-factor chains small enough to brute-force whose
*streamed, sharded* ground truth the differ cross-checks shard by
shard.  :func:`wing_product_cases` / :func:`wing_chain_cases` supply
the wings tier (``--tier wings``): shapes whose peeled wing numbers
stress the Rem. 1 support bounds from both sides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.generators.classic import (
    complete_bipartite,
    complete_graph,
    path_graph,
    star_graph,
    wheel_graph,
)
from repro.graphs.graph import Graph
from repro.kronecker.assumptions import Assumption

__all__ = [
    "VerifyCase",
    "random_bipartite_factor",
    "random_nonbipartite_factor",
    "random_cases",
    "adversarial_cases",
    "chain_cases",
    "scale_chain_cases",
    "wing_product_cases",
    "wing_chain_cases",
]


@dataclass(frozen=True)
class VerifyCase:
    """One factor pair to push through every implementation."""

    label: str
    assumption: Assumption
    A: Graph
    B: Graph

    def spec(self) -> dict:
        """JSON-ready reproduction spec (factor edge lists + sizes)."""
        return {
            "label": self.label,
            "assumption": self.assumption.value,
            "A": _graph_spec(self.A),
            "B": _graph_spec(self.B),
        }


def _graph_spec(graph: Graph) -> dict:
    u, v = graph.edge_arrays()
    return {"n": graph.n, "edges": [[int(a), int(b)] for a, b in zip(u, v)]}


def graph_from_spec(spec: dict) -> Graph:
    """Rebuild a factor from a witness spec (for reproduction runs)."""
    return Graph.from_edges(int(spec["n"]), [tuple(e) for e in spec["edges"]])


# ---------------------------------------------------------------------------
# Seeded random factors (constructive, no rejection)
# ---------------------------------------------------------------------------


def random_bipartite_factor(rng: np.random.Generator, max_side: int) -> Graph:
    """Connected bipartite loop-free graph, parts ``0..nu-1`` / ``nu..``.

    Spanning structure: vertices are inserted one at a time, each
    attaching to a uniformly random *already-inserted* vertex of the
    other part; extra cross edges are then sprinkled in.
    """
    nu = int(rng.integers(1, max_side + 1))
    nw = int(rng.integers(1, max_side + 1))
    edges = set()
    inserted_u = [0]
    inserted_w: List[int] = []
    pending = [("w", k) for k in range(nw)] + [("u", i) for i in range(1, nu)]
    pending.sort(key=lambda t: (t[1], t[0]))
    for side, idx in pending:
        if side == "w":
            u = inserted_u[int(rng.integers(0, len(inserted_u)))]
            edges.add((u, nu + idx))
            inserted_w.append(idx)
        else:
            w = inserted_w[int(rng.integers(0, len(inserted_w)))]
            edges.add((idx, nu + w))
            inserted_u.append(idx)
    for i in range(nu):
        for k in range(nw):
            if (i, nu + k) not in edges and rng.random() < 0.3:
                edges.add((i, nu + k))
    return Graph.from_edges(nu + nw, sorted(edges))


def random_nonbipartite_factor(rng: np.random.Generator, max_n: int) -> Graph:
    """Connected loop-free graph guaranteed to contain a triangle."""
    n = int(rng.integers(3, max(max_n, 3) + 1))
    edges = {(0, 1), (1, 2), (0, 2)}
    for v in range(1, n):
        edges.add((int(rng.integers(0, v)), v))
    for i in range(n):
        for j in range(i + 1, n):
            if (i, j) not in edges and rng.random() < 0.25:
                edges.add((i, j))
    return Graph.from_edges(n, sorted(edges))


def random_cases(
    seed: int,
    trials: int,
    max_factor_size: int,
    assumptions: Sequence[Assumption],
) -> List[VerifyCase]:
    """``trials`` seeded random factor pairs, alternating assumptions.

    ``max_factor_size`` bounds the non-bipartite factor's vertex count
    and each bipartite factor's side, keeping the materialized product
    small enough for the brute-force referee.
    """
    rng = np.random.default_rng(seed)
    max_side = max(1, max_factor_size // 2)
    cases = []
    for t in range(trials):
        assumption = assumptions[t % len(assumptions)]
        if assumption is Assumption.NON_BIPARTITE_FACTOR:
            A = random_nonbipartite_factor(rng, max_factor_size)
        else:
            A = random_bipartite_factor(rng, max_side)
        B = random_bipartite_factor(rng, max_side)
        cases.append(VerifyCase(f"random[{t}]", assumption, A, B))
    return cases


# ---------------------------------------------------------------------------
# Adversarial deterministic corpora
# ---------------------------------------------------------------------------


def adversarial_cases(assumptions: Sequence[Assumption]) -> List[VerifyCase]:
    """Hand-picked shapes that historically expose counter bugs.

    Disconnected and empty factors are included on purpose: the count
    formulas hold without the connectivity half of Assumption 1, and
    the differ builds these products with ``require_connected=False``.
    """
    single_edge = path_graph(2)
    isolated = Graph.from_edges(3, [(0, 1)])  # one edge + isolated vertex
    matching = Graph.from_edges(4, [(0, 1), (2, 3)])
    cases: List[VerifyCase] = []
    a_i = Assumption.NON_BIPARTITE_FACTOR
    a_ii = Assumption.SELF_LOOPS_FACTOR
    if a_i in assumptions:
        tri = complete_graph(3)
        cases += [
            VerifyCase("adv-i/star-right", a_i, tri, star_graph(4)),
            VerifyCase("adv-i/path-right", a_i, tri, path_graph(5)),
            VerifyCase("adv-i/biclique-right", a_i, complete_graph(4),
                       complete_bipartite(2, 3).graph),
            VerifyCase("adv-i/wheel-left", a_i, wheel_graph(5),
                       complete_bipartite(2, 2).graph),
            VerifyCase("adv-i/single-edge-right", a_i, tri, single_edge),
            VerifyCase("adv-i/empty-right", a_i, tri, Graph.empty(3)),
            VerifyCase("adv-i/isolated-vertex-right", a_i, tri, isolated),
            VerifyCase("adv-i/matching-right", a_i, tri, matching),
        ]
    if a_ii in assumptions:
        cases += [
            VerifyCase("adv-ii/stars", a_ii, star_graph(3), star_graph(4)),
            VerifyCase("adv-ii/paths", a_ii, path_graph(4), path_graph(5)),
            VerifyCase("adv-ii/bicliques", a_ii, complete_bipartite(2, 2).graph,
                       complete_bipartite(2, 3).graph),
            VerifyCase("adv-ii/star-x-biclique", a_ii, star_graph(4),
                       complete_bipartite(3, 3).graph),
            VerifyCase("adv-ii/single-edge", a_ii, single_edge, single_edge),
            VerifyCase("adv-ii/empty-left", a_ii, Graph.empty(2), path_graph(3)),
            VerifyCase("adv-ii/empty-both", a_ii, Graph.empty(1), Graph.empty(2)),
            VerifyCase("adv-ii/isolated-vertex-left", a_ii, isolated, path_graph(3)),
            VerifyCase("adv-ii/matching-left", a_ii, matching, star_graph(2)),
        ]
    return cases


def chain_cases() -> List[tuple[str, List[Graph]]]:
    """Multi-factor chains for the ``combine_stats`` fold check."""
    return [
        ("chain/path2-path3-star2", [path_graph(2), path_graph(3), star_graph(2)]),
        ("chain/biclique22-path2-path2",
         [complete_bipartite(2, 2).graph, path_graph(2), path_graph(2)]),
        ("chain/triangle-path2-path2",
         [complete_graph(3), path_graph(2), path_graph(2)]),
    ]


def wing_product_cases() -> List[VerifyCase]:
    """Factor pairs for the wings tier (``repro verify --tier wings``).

    Shapes chosen for their wing spectra: stars peel everything to wing
    0 (no 4-cycle survives a degree-1 fringe), bicliques maximize both
    the support and the gap the peel has to close, and the mixed cases
    put certified-zero edges and dense wings in the same product.  Kept
    tiny — the brute referee recomputes every support from scratch each
    peeling round.
    """
    a_i = Assumption.NON_BIPARTITE_FACTOR
    a_ii = Assumption.SELF_LOOPS_FACTOR
    return [
        VerifyCase("wings/stars", a_ii, star_graph(3), star_graph(4)),
        VerifyCase("wings/bicliques", a_ii, complete_bipartite(2, 2).graph,
                   complete_bipartite(2, 3).graph),
        VerifyCase("wings/star-x-biclique", a_ii, star_graph(4),
                   complete_bipartite(2, 2).graph),
        VerifyCase("wings/path-x-biclique", a_ii, path_graph(4),
                   complete_bipartite(2, 2).graph),
        VerifyCase("wings/single-edge", a_ii, path_graph(2), path_graph(2)),
        VerifyCase("wings/isolated-vertex", a_ii,
                   Graph.from_edges(3, [(0, 1)]), path_graph(3)),
        VerifyCase("wings/triangle-x-biclique", a_i, complete_graph(3),
                   complete_bipartite(2, 2).graph),
    ]


def wing_chain_cases() -> List[tuple[str, List[Graph]]]:
    """3-factor chains for the wings tier's streamed / digit-probe legs."""
    return [
        ("wings/chain-path3-biclique12-path2",
         [path_graph(3), complete_bipartite(1, 2).graph, path_graph(2)]),
        ("wings/chain-star3-path2-path2",
         [star_graph(3), path_graph(2), path_graph(2)]),
        ("wings/chain-biclique22-star2-path2",
         [complete_bipartite(2, 2).graph, star_graph(2), path_graph(2)]),
    ]


def scale_chain_cases() -> List[tuple[str, List[Graph]]]:
    """Deep chains for the extreme-scale tier's streamed-shard referee.

    3-4 loop-free factors each, products capped near 100 vertices so the
    quadratic brute-force referee stays instant while the streamed path
    still exercises multi-level recursion, boundary segments, and
    degree-skewed partitions (stars and bicliques concentrate row work).
    """
    return [
        ("scale/path3-star2-path2",
         [path_graph(3), star_graph(2), path_graph(2)]),
        ("scale/star3-biclique12-path2",
         [star_graph(3), complete_bipartite(1, 2).graph, path_graph(2)]),
        ("scale/triangle-path3-star2",
         [complete_graph(3), path_graph(3), star_graph(2)]),
        ("scale/star2-path2-path2-path2",
         [star_graph(2), path_graph(2), path_graph(2), path_graph(2)]),
        ("scale/wheel4-biclique22-path2",
         [wheel_graph(4), complete_bipartite(2, 2).graph, path_graph(2)]),
    ]
